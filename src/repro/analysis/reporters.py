"""Text and JSON renderings of an :class:`AnalysisResult`.

The text form is for humans and CI logs; the JSON form is a stable
machine surface (uploaded as a CI artifact) with per-rule counts, every
active finding, and the waiver bookkeeping, so dashboards and follow-up
tooling never have to parse the human text.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import fingerprint


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    out = []
    for finding in result.findings:
        out.append(
            f"{finding.location()}: {finding.rule} "
            f"[{finding.severity}] {finding.message}"
        )
        if finding.snippet:
            out.append(f"    {finding.snippet}")
    if verbose:
        for finding, sup in result.suppressed:
            out.append(
                f"{finding.location()}: {finding.rule} suppressed — "
                f"{sup.justification}"
            )
        for finding, entry in result.baselined:
            out.append(
                f"{finding.location()}: {finding.rule} baselined — "
                f"{entry.justification}"
            )
    for entry in result.unused_baseline:
        out.append(
            f"{entry.path}:{entry.line}: note: unused baseline entry for "
            f"{entry.rule} ({entry.snippet!r}) — remove it"
        )
    out.append(
        f"{len(result.findings)} finding(s) "
        f"({len(result.errors)} error(s), {len(result.warnings)} warning(s)), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.files_scanned} file(s) scanned"
    )
    return "\n".join(out)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (schema version 1)."""
    by_rule: Counter = Counter(f.rule for f in result.findings)
    payload: Dict = {
        "version": 1,
        "summary": {
            "files_scanned": result.files_scanned,
            "rules_run": result.rules_run,
            "findings": len(result.findings),
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "unused_baseline_entries": len(result.unused_baseline),
            "findings_by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [
            {
                "rule": f.rule,
                "severity": str(f.severity),
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": fingerprint(f),
            }
            for f in result.findings
        ],
        "suppressed": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "justification": sup.justification,
            }
            for f, sup in result.suppressed
        ],
        "baselined": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "justification": entry.justification,
            }
            for f, entry in result.baselined
        ],
        "unused_baseline": [
            {"rule": e.rule, "path": e.path, "line": e.line}
            for e in result.unused_baseline
        ],
    }
    return json.dumps(payload, indent=2)
