"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit status: 0 when clean (possibly via waivers), 1 when active
error-severity findings remain (or warnings, under ``--strict``), 2 on
usage problems (bad baseline, unknown rule codes, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import run_analysis
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.analysis`` argument parser (shared with ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter: determinism, top-k total order, "
            "monotonic clocks, lock discipline, shared-memory lifecycle, "
            "and deprecated-shim hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the report to FILE (any --format)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            f"baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report everything",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write the current active findings to the baseline file as a "
            "skeleton (justifications must then be filled in by hand)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--severity",
        metavar="CODE=LEVEL",
        action="append",
        default=[],
        help="override a rule's severity, e.g. --severity REP004=warning",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the run",
    )
    parser.add_argument(
        "--include-tests",
        action="store_true",
        help="also scan test files (skipped by default)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="text format: also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code for code in raw.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.severity:<7}  {rule.name}")
            print(f"        {rule.description}")
        return 0

    severities = {}
    for pair in args.severity:
        if "=" not in pair:
            print(f"error: --severity expects CODE=LEVEL, got {pair!r}", file=sys.stderr)
            return 2
        code, level = pair.split("=", 1)
        severities[code] = level

    baseline = None
    baseline_path = args.baseline
    if not args.no_baseline and not args.write_baseline:
        if baseline_path is None and Path(DEFAULT_BASELINE).exists():
            baseline_path = DEFAULT_BASELINE
        if baseline_path is not None:
            try:
                baseline = load_baseline(baseline_path)
            except (BaselineError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    try:
        result = run_analysis(
            args.paths,
            baseline=baseline,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            severities=severities,
            include_tests=args.include_tests,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        count = write_baseline(result.findings, target)
        print(
            f"wrote {count} entr{'y' if count == 1 else 'ies'} to {target} — "
            f"replace every placeholder justification before committing"
        )
        return 0

    report = (
        render_json(result)
        if args.format == "json"
        else render_text(result, verbose=args.verbose)
    )
    print(report)
    if args.out:
        Path(args.out).write_text(report + "\n", encoding="utf-8")
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
