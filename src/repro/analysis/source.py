"""Source-file loading and discovery for the analysis engine.

Each scanned file is parsed exactly once into a :class:`SourceFile`
carrying the AST, the raw lines, and the path both ways rules need it:
as given on the command line (for reporting and baseline matching) and
as resolved filesystem parts (for rule scoping — "is this under
``serving/``?", "is this ``utils/rng.py`` itself?").
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "site", "results", "node_modules"}


@dataclass
class SourceFile:
    """One parsed Python file handed to every applicable rule."""

    path: Path
    display: str
    text: str
    lines: List[str]
    tree: Optional[ast.Module]
    parse_error: Optional[SyntaxError] = None
    parts: Tuple[str, ...] = field(default_factory=tuple)

    def line_at(self, lineno: int) -> str:
        """The stripped source line at 1-based *lineno* ('' if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_test_tree(self) -> bool:
        """Whether the file belongs to a test suite (rules skip those)."""
        return (
            "tests" in self.parts
            or "conftest.py" == self.parts[-1]
            or self.parts[-1].startswith("test_")
        )


def display_path(path: Path) -> str:
    """*path* relative to the working directory when possible, posix-style.

    Reports and baseline entries use this form, so a baseline written
    from the repo root keeps matching as long as the tool runs from the
    repo root (which the CI job and the Makefile-style invocations do).
    """
    resolved = path.resolve()
    cwd = Path.cwd().resolve()
    try:
        return resolved.relative_to(cwd).as_posix()
    except ValueError:
        return resolved.as_posix()


def load_source(path: Path) -> SourceFile:
    """Read and parse *path*; a syntax error is recorded, not raised."""
    text = path.read_text(encoding="utf-8")
    tree: Optional[ast.Module] = None
    error: Optional[SyntaxError] = None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:  # surfaced as a REP999 finding by the engine
        error = exc
    return SourceFile(
        path=path,
        display=display_path(path),
        text=text,
        lines=text.splitlines(),
        tree=tree,
        parse_error=error,
        parts=path.resolve().parts,
    )


def collect_py_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            if path.suffix == ".py":
                found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(Path(dirpath) / name)
    # De-duplicate while keeping the first occurrence's order stable.
    seen = set()
    unique: List[Path] = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique
