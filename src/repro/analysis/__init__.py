"""Repo-specific static analysis: the codebase's invariants as lint rules.

The train → stream → serve stack makes hard guarantees — bit-identical
rankings across shard counts and retrieval modes, seeded end-to-end
reproducibility, zero-stale hot swaps, disciplined lock and
shared-memory lifecycles.  Until this package existed those contracts
were enforced only by convention and by tests that had to remember to
check them; the PR 5 tie-break bug happened precisely because one call
site bypassed the :mod:`repro.core.topk` total order.  ``repro.analysis``
turns each hand-enforced contract into a machine-checked rule over the
stdlib ``ast``:

========  ==========================================================
REP001    determinism — no module-level / unseeded RNG outside
          ``repro.utils.rng``; thread seeded Generators everywhere
REP002    top-k total order — no raw ``argsort``/``argpartition``/
          ``sort`` on score arrays outside ``core/topk.py``
REP003    monotonic clocks — ``time.time()`` is for timestamps, not
          durations or deadlines
REP004    lock discipline — an attribute guarded by a lock somewhere
          in a class must be guarded everywhere (outside ``__init__``)
REP005    shared-memory lifecycle — ``SharedMemory``/``SharedFactors``
          creation needs a reachable ``close``/``unlink``/``release``
          in a ``finally`` block or a cleanup method
REP006    no deprecated shims internally — ``model.fit``,
          ``ThreadedSGDTrainer`` and legacy ``.npz`` loading are
          compatibility surface for *users*, not for ``src/``
========  ==========================================================

Run it as ``python -m repro.analysis [paths...]`` or ``python -m repro
lint``.  Findings can be suppressed inline with a justified comment::

    order = np.argsort(-scores)  # repro: noqa[REP002] -- full ranking, not a top-k

(the justification after ``--`` is mandatory; a bare ``noqa`` is itself
a finding), or grandfathered in a committed baseline file
(``analysis-baseline.json``) whose entries each carry a justification.
New rules plug in by subclassing :class:`~repro.analysis.registry.Rule`
and decorating with :func:`~repro.analysis.registry.register` — see
``docs/analysis.md``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.findings import Finding, Severity, fingerprint
from repro.analysis.registry import Rule, all_rules, register
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "fingerprint",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run_analysis",
    "write_baseline",
]
