"""The plugin-style rule registry.

A rule is a class with a ``code`` (``REPnnn``), a default
:class:`~repro.analysis.findings.Severity`, an ``applies_to`` scope
predicate, and a ``check`` that yields findings for one parsed file.
Decorating with :func:`register` makes it discoverable; the engine and
the CLI pick every registered rule up automatically, so adding a rule is
one new module under :mod:`repro.analysis.rules` (imported from that
package's ``__init__`` so registration runs) plus its tests.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile


class Rule:
    """Base class for invariant rules.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to the directories whose
    contract it encodes (it is never called for test files — the engine
    skips those globally).
    """

    #: Unique ``REPnnn`` identifier, also the ``noqa`` key.
    code: str = "REP000"
    #: Short kebab-ish name shown by ``--list-rules``.
    name: str = "unnamed-rule"
    #: Default severity; the CLI can override per rule.
    severity: Severity = Severity.ERROR
    #: One-line contract statement shown by ``--list-rules`` and docs.
    description: str = ""

    def applies_to(self, src: SourceFile) -> bool:
        """Whether *src* is inside the tree this rule's contract covers."""
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed file (``src.tree`` is not None)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(
        self, src: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at *node* with this rule's identity."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.code,
            severity=self.severity,
            path=src.display,
            line=line,
            col=col + 1,
            message=message,
            snippet=src.line_at(line),
        )


#: code -> rule class, populated by the :func:`register` decorator.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.code or cls.code in REGISTRY:
        raise ValueError(f"rule code {cls.code!r} is empty or already registered")
    REGISTRY[cls.code] = cls
    return cls


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate every registered rule, optionally filtered by code.

    Importing :mod:`repro.analysis.rules` here (not at module import
    time) avoids a circular import: rule modules import this registry.
    """
    import repro.analysis.rules  # noqa: F401  (side effect: registration)

    codes = sorted(REGISTRY)
    if select:
        wanted = {c.strip().upper() for c in select}
        unknown = wanted - set(codes)
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes = [c for c in codes if c in wanted]
    if ignore:
        dropped = {c.strip().upper() for c in ignore}
        unknown = dropped - set(REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes = [c for c in codes if c not in dropped]
    return [REGISTRY[c]() for c in codes]
