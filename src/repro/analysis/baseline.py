"""The committed baseline: grandfathered findings, each with a reason.

A baseline lets the linter gate *new* findings while a handful of
deliberate, reviewed exceptions stay in the tree.  The file is JSON so
diffs are reviewable, and every entry **must** carry a non-placeholder
``justification`` — loading rejects entries without one, so the baseline
can never silently absorb violations.

Matching is by :func:`~repro.analysis.findings.fingerprint` (rule + file
+ source-line content, not line number), so entries survive unrelated
edits above them but die with the line they excuse — editing a baselined
line resurfaces the finding, which is exactly the review trigger wanted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.analysis.findings import Finding, fingerprint

BASELINE_VERSION = 1

#: Default committed location, relative to the invocation directory.
DEFAULT_BASELINE = "analysis-baseline.json"

#: Placeholder written by ``--write-baseline``; loading refuses it.
TODO_JUSTIFICATION = "TODO: justify or fix"


class BaselineError(ValueError):
    """The baseline file is malformed or an entry lacks a justification."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (``line`` is informational only)."""

    rule: str
    path: str
    line: int
    snippet: str
    justification: str


class Baseline:
    """Loaded baseline entries, indexed by fingerprint for matching."""

    def __init__(self, entries: Iterable[BaselineEntry]):
        self.entries: List[BaselineEntry] = list(entries)
        self._by_fingerprint: Dict[str, BaselineEntry] = {
            fingerprint(entry): entry for entry in self.entries
        }
        self._matched: set = set()

    def match(self, finding: Finding) -> Optional[BaselineEntry]:
        """The entry excusing *finding*, or ``None`` (marks the entry used)."""
        key = fingerprint(finding)
        entry = self._by_fingerprint.get(key)
        if entry is not None:
            self._matched.add(key)
        return entry

    def unused(self) -> List[BaselineEntry]:
        """Entries that excused nothing this run — candidates for deletion."""
        return [
            entry
            for key, entry in self._by_fingerprint.items()
            if key not in self._matched
        ]


def load_baseline(path) -> Baseline:
    """Read and validate a baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected an object with version == {BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(payload.get("entries", [])):
        missing = {"rule", "path", "snippet", "justification"} - set(raw)
        if missing:
            raise BaselineError(
                f"{path}: entry {index} is missing {sorted(missing)}"
            )
        justification = str(raw["justification"]).strip()
        if not justification or justification == TODO_JUSTIFICATION:
            raise BaselineError(
                f"{path}: entry {index} ({raw['rule']} at {raw['path']}) has no "
                f"real justification — every baselined finding must say why it "
                f"is deliberate"
            )
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]).replace("\\", "/"),
                line=int(raw.get("line", 0)),
                snippet=str(raw["snippet"]),
                justification=justification,
            )
        )
    return Baseline(entries)


def write_baseline(findings: Iterable[Finding], path) -> int:
    """Write *findings* as a fresh baseline skeleton; returns the count.

    Every entry gets the :data:`TODO_JUSTIFICATION` placeholder, which
    :func:`load_baseline` refuses — the author must replace each one
    with a real sentence before the baseline is usable.
    """
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "snippet": f.snippet,
            "justification": TODO_JUSTIFICATION,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)
