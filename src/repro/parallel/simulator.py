"""Discrete-event model of multi-core SGD scaling (Figs. 8a/b).

Python cannot reproduce the paper's C++ wall-clock scaling (the GIL
serializes the per-sample arithmetic), so — per the substitution rule in
DESIGN.md — the *hardware* is simulated while the *algorithmic* artifacts
(lock protocol, caching, update-frequency skew) are implemented for real in
:mod:`repro.parallel.trainer`.

The model is a two-resource queueing network, the textbook abstraction of
the paper's Sec. 6.1 setup:

* a **CPU** with ``cores`` servers — the gradient arithmetic of one sample
  holds a core for ``compute_cost`` time units;
* a **hot lock** with one server — the serialized update of the shared
  upper-taxonomy rows holds it for ``lock_cost`` units.  TF's hot set
  (~2k internal nodes hit by every sample) is modeled as a single
  bottleneck resource; MF's milder sharing gets a smaller ``lock_cost``.

Without caching, lock hold time inflates once threads exceed
``degrade_after`` (convoying / cache-line ping-pong), reproducing the
speedup *drop* after 40 threads; threshold caching batches hot-row writes
and removes the inflation (Fig. 8b).

Asymptotically throughput obeys the operational bounds
``X(T) ≤ min(T/(compute+lock), cores/compute, 1/lock_eff)``; the
discrete-event simulation adds the queueing delays that bend the curve
between the linear and saturated regimes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class ParallelProfile:
    """Cost model of one trainer configuration.

    Defaults are chosen from first principles, not fitted to the figure:
    TF(4,0) updates ``U + 1`` chains per sample (≈2.5× MF's arithmetic)
    and serializes on the hot internal rows; both asymptotes follow the
    operational bound ``(compute + lock)/lock``.
    """

    name: str
    compute_cost: float  # CPU time units per sample
    lock_cost: float  # serialized time units per sample
    cores: int = 12  # the paper's machine
    cached: bool = False
    cache_threshold: float = 0.1
    degrade_after: int = 40  # threads at which convoying kicks in
    degrade_rate: float = 0.015  # lock inflation per excess thread

    def __post_init__(self) -> None:
        check_positive("compute_cost", self.compute_cost)
        check_positive("lock_cost", self.lock_cost)
        check_positive("cores", self.cores)
        check_non_negative("degrade_rate", self.degrade_rate)

    def effective_lock_cost(self, threads: int) -> float:
        """Lock hold time per sample at a given thread count."""
        if self.cached:
            # Threshold reconciliation batches hot-row writes; the residual
            # serialized work is the reconciliation itself.  The paper's
            # plateau is unchanged, so the base cost stays — caching's
            # benefit is removing the convoying inflation.
            return self.lock_cost
        excess = max(0, threads - self.degrade_after)
        return self.lock_cost * (1.0 + self.degrade_rate * excess)

    def upper_bound_throughput(self, threads: int) -> float:
        """Operational-analysis bound on samples per time unit."""
        lock = self.effective_lock_cost(threads)
        return min(
            threads / (self.compute_cost + lock),
            self.cores / self.compute_cost,
            1.0 / lock,
        )


def mf_profile(**overrides) -> ParallelProfile:
    """MF(0): light per-sample arithmetic, mild sharing (max speedup ≈ 6)."""
    return replace(
        ParallelProfile(name="MF(0)", compute_cost=1.0, lock_cost=0.2),
        **overrides,
    )


def tf_profile(cached: bool = False, **overrides) -> ParallelProfile:
    """TF(4,0): ≈2.5× arithmetic, hot upper-taxonomy rows (max speedup ≈ 8)."""
    return replace(
        ParallelProfile(
            name="TF(4,0)" + (" cached" if cached else ""),
            compute_cost=2.5,
            lock_cost=0.357,
            cached=cached,
        ),
        **overrides,
    )


@dataclass
class SimulatedEpoch:
    """Result of simulating one epoch at a fixed thread count."""

    threads: int
    epoch_time: float
    throughput: float
    cpu_utilization: float
    lock_utilization: float


def simulate_epoch(
    profile: ParallelProfile,
    threads: int,
    n_samples: int = 4000,
    jitter: float = 0.1,
    seed: RngLike = 0,
) -> SimulatedEpoch:
    """Discrete-event simulation of one SGD epoch.

    Each of *threads* workers loops: acquire a CPU core (FIFO), compute for
    ``compute_cost`` (± *jitter*), release; acquire the hot lock (FIFO),
    hold for the effective lock cost, release; repeat until the epoch's
    *n_samples* are exhausted.
    """
    check_positive("threads", threads)
    check_positive("n_samples", n_samples)
    rng = ensure_rng(seed)
    lock_cost = profile.effective_lock_cost(threads)

    # Event-driven core: a heap of (time, sequence, worker, phase).
    ARRIVE_CPU, FINISH_CPU, FINISH_LOCK = 0, 1, 2
    heap: List[Tuple[float, int, int, int]] = []
    sequence = 0
    for worker in range(threads):
        heapq.heappush(heap, (0.0, sequence, worker, ARRIVE_CPU))
        sequence += 1

    free_cores = profile.cores
    cpu_queue: List[int] = []
    lock_busy = False
    lock_queue: List[int] = []
    samples_started = 0
    samples_done = 0
    cpu_busy_time = 0.0
    lock_busy_time = 0.0
    now = 0.0

    def draw(base: float) -> float:
        if jitter <= 0:
            return base
        return base * float(rng.uniform(1.0 - jitter, 1.0 + jitter))

    while heap and samples_done < n_samples:
        now, _, worker, phase = heapq.heappop(heap)
        if phase == ARRIVE_CPU:
            if samples_started >= n_samples:
                continue  # epoch exhausted; worker retires
            samples_started += 1
            if free_cores > 0:
                free_cores -= 1
                service = draw(profile.compute_cost)
                cpu_busy_time += service
                heapq.heappush(heap, (now + service, sequence, worker, FINISH_CPU))
                sequence += 1
            else:
                cpu_queue.append(worker)
        elif phase == FINISH_CPU:
            if cpu_queue:
                queued = cpu_queue.pop(0)
                service = draw(profile.compute_cost)
                cpu_busy_time += service
                heapq.heappush(heap, (now + service, sequence, queued, FINISH_CPU))
                sequence += 1
            else:
                free_cores += 1
            if lock_busy:
                lock_queue.append(worker)
            else:
                lock_busy = True
                service = draw(lock_cost)
                lock_busy_time += service
                heapq.heappush(heap, (now + service, sequence, worker, FINISH_LOCK))
                sequence += 1
        else:  # FINISH_LOCK
            samples_done += 1
            if lock_queue:
                queued = lock_queue.pop(0)
                service = draw(lock_cost)
                lock_busy_time += service
                heapq.heappush(heap, (now + service, sequence, queued, FINISH_LOCK))
                sequence += 1
            else:
                lock_busy = False
            heapq.heappush(heap, (now, sequence, worker, ARRIVE_CPU))
            sequence += 1

    epoch_time = max(now, 1e-12)
    return SimulatedEpoch(
        threads=threads,
        epoch_time=epoch_time,
        throughput=samples_done / epoch_time,
        cpu_utilization=cpu_busy_time / (epoch_time * profile.cores),
        lock_utilization=lock_busy_time / epoch_time,
    )


def speedup_curve(
    profile: ParallelProfile,
    thread_counts: Optional[List[int]] = None,
    n_samples: int = 4000,
    seed: RngLike = 0,
) -> Dict[int, float]:
    """Speedup over the single-thread run at each thread count (Fig. 8b)."""
    if thread_counts is None:
        thread_counts = [1, 2, 4, 8, 12, 16, 24, 32, 40, 48]
    baseline = simulate_epoch(profile, 1, n_samples, seed=seed).epoch_time
    return {
        t: baseline / simulate_epoch(profile, t, n_samples, seed=seed).epoch_time
        for t in thread_counts
    }


def epoch_time_curve(
    profile: ParallelProfile,
    thread_counts: Optional[List[int]] = None,
    n_samples: int = 4000,
    time_scale: float = 1.0,
    seed: RngLike = 0,
) -> Dict[int, float]:
    """Absolute per-epoch time at each thread count (Fig. 8a).

    ``time_scale`` converts simulator time units into seconds for
    presentation next to the paper's axes.
    """
    if thread_counts is None:
        thread_counts = [1, 2, 4, 8, 12, 16, 24, 32, 40, 48]
    return {
        t: time_scale * simulate_epoch(profile, t, n_samples, seed=seed).epoch_time
        for t in thread_counts
    }
