"""Multi-threaded SGD with row locks and hot-row caching (paper Sec. 6.1).

This is the *functional* reproduction of the paper's parallel trainer: the
factor matrices are shared, every row access goes through a striped lock
manager, and (optionally) each thread routes the frequently-updated
internal-node rows through a :class:`~repro.parallel.cache.FactorCache`
with threshold reconciliation.

Because CPython's GIL serializes the pure-Python per-sample arithmetic,
this trainer demonstrates *correctness* of the protocol (same model
quality as the serial trainer, no deadlocks, contention statistics) rather
than wall-clock scaling; the scaling curves of Fig. 8(a,b) are produced by
:mod:`repro.parallel.simulator`, parameterized with the update-frequency
skew this trainer measures.  See DESIGN.md's substitution table.

Only ``markov_order = 0`` models are supported here (the configuration the
paper's scaling experiment uses: ``TF(4,0)`` and ``MF(0)``).

:class:`ThreadedSGDEngine` is the low-level engine (operating on a bare
:class:`~repro.core.factors.FactorSet`); model-level training goes through
:class:`repro.train.ThreadedTrainer`, which wraps it with the unified
epoch loop, callbacks, and seed policy.  The old :class:`ThreadedSGDTrainer`
name survives as a deprecated shim.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.bpr import log_sigmoid, sigmoid
from repro.core.factors import FactorSet
from repro.core.sampling import TripleStore
from repro.data.transactions import TransactionLog
from repro.parallel.cache import FactorCache
from repro.parallel.locks import StripedLockManager
from repro.utils.config import TrainConfig
from repro.utils.rng import derive_seed, spawn_rngs
from repro.utils.validation import check_positive


@dataclass
class ThreadedEpochStats:
    """Diagnostics of one threaded epoch."""

    loss: float
    seconds: float
    n_examples: int
    lock_acquisitions: int
    lock_contention_rate: float
    reconciliations: int
    hot_row_updates: int

    def __str__(self) -> str:
        return (
            f"loss={self.loss:.4f} ({self.seconds:.2f}s, "
            f"{self.n_examples} examples, "
            f"contention={self.lock_contention_rate:.3f}, "
            f"reconciliations={self.reconciliations})"
        )

    def as_dict(self) -> dict:
        """Flat summary (for logs, telemetry exports, and benchmarks)."""
        return {
            "loss": self.loss,
            "seconds": self.seconds,
            "n_examples": self.n_examples,
            "lock_acquisitions": self.lock_acquisitions,
            "lock_contention_rate": self.lock_contention_rate,
            "reconciliations": self.reconciliations,
            "hot_row_updates": self.hot_row_updates,
        }


class ThreadedSGDEngine:
    """Lock-based parallel BPR/SGD over a shared :class:`FactorSet`.

    Parameters
    ----------
    factor_set:
        Shared parameters (mutated in place by all threads).
    log:
        Training transactions.
    config:
        Hyper-parameters (``markov_order`` must be 0, ``sibling_ratio``
        must be 0 — the paper's scaling experiment trains plain TF/MF).
    n_threads:
        Worker count; each processes a shard of the epoch's samples.
    use_cache:
        Route internal-node (hot) rows through per-thread write-back
        caches instead of per-update locking.
    cache_threshold:
        The reconciliation threshold ``th`` (paper uses 0.1).
    """

    def __init__(
        self,
        factor_set: FactorSet,
        log: TransactionLog,
        config: TrainConfig,
        n_threads: int = 4,
        use_cache: bool = False,
        cache_threshold: float = 0.1,
        n_stripes: int = 4096,
    ):
        check_positive("n_threads", n_threads)
        if config.markov_order != 0:
            raise ValueError(
                "the threaded SGD engine supports markov_order=0 only; "
                "the paper's scaling experiment uses TF(4,0) and MF(0)"
            )
        if config.sibling_ratio != 0:
            raise ValueError(
                "the threaded SGD engine does not mix in sibling training "
                "(set sibling_ratio=0)"
            )
        self.factors = factor_set
        self.log = log
        self.config = config
        #: Step size used by the next sample; mutable so a schedule (see
        #: :class:`repro.train.callbacks.LRSchedule`) can anneal it
        #: between epochs without rebuilding the engine.
        self.learning_rate = float(config.learning_rate)
        self.n_threads = int(n_threads)
        self.use_cache = bool(use_cache)
        self.cache_threshold = float(cache_threshold)
        self.store = TripleStore(log)
        self.user_locks = StripedLockManager(n_stripes)
        self.w_locks = StripedLockManager(n_stripes)
        # Hot rows = internal taxonomy nodes (everything that is not an
        # item); these are updated orders of magnitude more often.
        taxonomy = factor_set.taxonomy
        self.hot = np.ones(taxonomy.n_nodes + 1, dtype=bool)
        self.hot[taxonomy.items] = False
        self.hot[taxonomy.pad_id] = False
        self.pad_id = taxonomy.pad_id
        self.epoch_count = 0

    # ------------------------------------------------------------------
    def train_epoch(
        self, seed: Optional[int] = None, *, inline: bool = False
    ) -> ThreadedEpochStats:
        """Run one epoch across the worker threads.

        *seed* defaults to the library-wide per-epoch policy
        :func:`repro.utils.rng.derive_seed` ``(config.seed, epoch)``, so
        two engines built from identical configs produce bit-identical
        factors.  ``inline=True`` executes the worker shards sequentially
        in the calling thread — same shard boundaries, same RNG streams,
        same arithmetic, no threads — which is how
        :class:`repro.train.serial.SerialTrainer`'s per-sample mode shares
        this code path.
        """
        if seed is None:
            seed = derive_seed(self.config.seed, self.epoch_count)
        self.epoch_count += 1
        rngs = spawn_rngs(seed, self.n_threads + 1)
        order = self.store.epoch_order(rngs[-1], shuffle=self.config.shuffle)
        shards = np.array_split(order, self.n_threads)

        self.user_locks.reset_stats()
        self.w_locks.reset_stats()
        losses = [0.0] * self.n_threads
        counts = [0] * self.n_threads
        caches: List[Optional[FactorCache]] = [None] * self.n_threads
        bias_caches: List[Optional[FactorCache]] = [None] * self.n_threads
        hot_updates = [0] * self.n_threads

        def worker(tid: int) -> None:
            cache = None
            bias_cache = None
            if self.use_cache:
                cache = FactorCache(
                    self.factors.w, self.w_locks, self.cache_threshold
                )
                bias_cache = FactorCache(
                    self.factors.bias.reshape(-1, 1),
                    self.w_locks,
                    self.cache_threshold,
                )
                caches[tid] = cache
                bias_caches[tid] = bias_cache
            rng = rngs[tid]
            shard = shards[tid]
            loss = 0.0
            for start in range(0, shard.size, 4096):
                block = shard[start : start + 4096]
                negatives = self.store.sample_negatives(
                    block, rng, attempts=self.config.negative_attempts
                )
                for k, idx in enumerate(block):
                    loss += self._update_sample(
                        int(self.store.triples[idx, 0]),
                        int(self.store.triples[idx, 2]),
                        int(negatives[k]),
                        cache,
                        bias_cache,
                        tid,
                        hot_updates,
                    )
            if cache is not None:
                cache.flush()
            if bias_cache is not None:
                bias_cache.flush()
            losses[tid] = loss
            counts[tid] = int(shard.size)

        started = time.perf_counter()
        if inline:
            for tid in range(self.n_threads):
                worker(tid)
        else:
            threads = [
                threading.Thread(target=worker, args=(tid,), name=f"sgd-{tid}")
                for tid in range(self.n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        self.factors.zero_pad_rows()
        seconds = time.perf_counter() - started

        reconciliations = sum(
            c.reconciliations for c in caches if c is not None
        ) + sum(c.reconciliations for c in bias_caches if c is not None)
        total_acquisitions = (
            self.user_locks.acquisitions + self.w_locks.acquisitions
        )
        total_contended = self.user_locks.contended + self.w_locks.contended
        return ThreadedEpochStats(
            loss=sum(losses) / max(sum(counts), 1),
            seconds=seconds,
            n_examples=sum(counts),
            lock_acquisitions=total_acquisitions,
            lock_contention_rate=(
                total_contended / total_acquisitions if total_acquisitions else 0.0
            ),
            reconciliations=reconciliations,
            hot_row_updates=sum(hot_updates),
        )

    def train(self, epochs: Optional[int] = None) -> List[ThreadedEpochStats]:
        """Run several epochs; returns per-epoch stats."""
        if epochs is None:
            epochs = self.config.epochs
        return [self.train_epoch() for _ in range(epochs)]

    # ------------------------------------------------------------------
    def _update_sample(
        self,
        user: int,
        pos_item: int,
        neg_item: int,
        cache: Optional[FactorCache],
        bias_cache: Optional[FactorCache],
        tid: int,
        hot_updates: List[int],
    ) -> float:
        """One per-sample BPR update under row locks (paper's 3 steps)."""
        fs = self.factors
        lr = self.learning_rate
        reg = self.config.reg
        pos_chain = fs.item_chains[pos_item]
        neg_chain = fs.item_chains[neg_item]

        # Step 2: read the factors (read locks / cache reads).
        with self.user_locks.locking([user]):
            vu = fs.user[user].copy()
        pos_rows = [int(r) for r in pos_chain]
        neg_rows = [int(r) for r in neg_chain]
        all_rows = pos_rows + neg_rows
        cold_rows = [r for r in all_rows if not self.hot[r]]
        hot_rows = [r for r in all_rows if self.hot[r]]
        hot_updates[tid] += len(hot_rows)

        def read_row(row: int) -> np.ndarray:
            if cache is not None and self.hot[row]:
                return cache.read(row)
            return fs.w[row].copy()

        def read_bias(row: int) -> float:
            if bias_cache is not None and self.hot[row]:
                return float(bias_cache.read(row)[0])
            return float(fs.bias[row])

        with self.w_locks.locking(all_rows if cache is None else cold_rows):
            w_pos_rows = [read_row(r) for r in pos_rows]
            w_neg_rows = [read_row(r) for r in neg_rows]
            b_pos = sum(read_bias(r) for r in pos_rows)
            b_neg = sum(read_bias(r) for r in neg_rows)

        eff_pos = np.sum(w_pos_rows, axis=0)
        eff_neg = np.sum(w_neg_rows, axis=0)
        delta = eff_pos - eff_neg
        diff = float(vu @ delta)
        if self.config.use_bias:
            diff += b_pos - b_neg
        c = float(1.0 - sigmoid(np.asarray([diff]))[0])

        # Step 3: write back (write locks / cached accumulation).
        with self.user_locks.locking([user]):
            fs.user[user] += lr * (c * delta - reg * fs.user[user])

        grad = c * vu
        use_bias = self.config.use_bias

        def apply_row(row: int, w_value: np.ndarray, sign: float) -> None:
            if row == self.pad_id:  # pad rows stay pinned at zero
                return
            w_update = lr * (sign * grad - reg * w_value)
            if cache is not None and self.hot[row]:
                cache.accumulate(row, w_update)
                if use_bias:
                    b_update = lr * (
                        sign * c - reg * float(bias_cache.read(row)[0])
                    )
                    bias_cache.accumulate(row, np.asarray([b_update]))
            else:
                with self.w_locks.locking([row]):
                    fs.w[row] += w_update
                    if use_bias:
                        fs.bias[row] += lr * (sign * c - reg * fs.bias[row])

        for row, value in zip(pos_rows, w_pos_rows):
            apply_row(row, value, +1.0)
        for row, value in zip(neg_rows, w_neg_rows):
            apply_row(row, value, -1.0)
        return float(-log_sigmoid(np.asarray([diff]))[0])


class ThreadedSGDTrainer(ThreadedSGDEngine):
    """Deprecated alias for :class:`ThreadedSGDEngine`.

    The engine is now driven through the unified training front door,
    :class:`repro.train.ThreadedTrainer`, which adds the shared epoch
    loop, callbacks, learning-rate schedules, and the library-wide seed
    policy.  Construct that instead; this name remains as a thin shim for
    existing callers.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "ThreadedSGDTrainer is deprecated; drive training through "
            "repro.train.ThreadedTrainer (or use ThreadedSGDEngine "
            "directly for low-level experiments) — see docs/migration.md "
            "for the full upgrade guide",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
