"""Thread-local factor caching with threshold reconciliation (Sec. 6.1).

The taxonomy makes contention skewed: the ~2k internal-node rows are
updated ~1000× more often than the ~1.5M item rows, so they become lock
hot-spots.  The paper's remedy: each thread accumulates updates to hot rows
in a local cache and only reconciles with the global matrix when the local
drift exceeds a threshold.

:class:`FactorCache` implements exactly that protocol for one matrix:

* ``read(row)`` — the thread's current view: global value + local delta;
* ``accumulate(row, delta)`` — buffer an update locally;
* reconciliation — when ``‖delta‖_∞ > threshold``, the delta is applied to
  the global matrix under the row's lock and the buffer resets.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.parallel.locks import StripedLockManager
from repro.utils.validation import check_positive


class FactorCache:
    """Per-thread write-back cache over the hot rows of a factor matrix.

    One instance per (thread, matrix); the global matrix and lock manager
    are shared across threads.

    Parameters
    ----------
    matrix:
        The shared factor matrix (rows are cached individually).
    locks:
        Lock manager guarding the matrix rows.
    threshold:
        Reconciliation threshold on the infinity norm of the accumulated
        local delta (the paper's ``th``; Fig. 8 uses ``th = 0.1``).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        locks: StripedLockManager,
        threshold: float = 0.1,
    ):
        check_positive("threshold", threshold)
        self.matrix = matrix
        self.locks = locks
        self.threshold = float(threshold)
        self._deltas: Dict[int, np.ndarray] = {}
        self.reconciliations = 0
        self.reads = 0
        self.writes = 0

    def read(self, row: int) -> np.ndarray:
        """The thread's view of *row* (global value plus local delta)."""
        self.reads += 1
        base = self.matrix[row]
        delta = self._deltas.get(row)
        if delta is None:
            return base.copy()
        return base + delta

    def accumulate(self, row: int, delta: np.ndarray) -> None:
        """Buffer an additive update to *row*, reconciling past threshold."""
        self.writes += 1
        buffered = self._deltas.get(row)
        if buffered is None:
            buffered = np.zeros_like(self.matrix[row])
            self._deltas[row] = buffered
        buffered += delta
        if float(np.abs(buffered).max()) > self.threshold:
            self._reconcile(row)

    def flush(self, row: Optional[int] = None) -> None:
        """Force reconciliation of one row (or every buffered row)."""
        if row is not None:
            if row in self._deltas:
                self._reconcile(row)
            return
        for buffered_row in list(self._deltas):
            self._reconcile(buffered_row)

    def _reconcile(self, row: int) -> None:
        delta = self._deltas.pop(row)
        with self.locks.locking([row]):
            self.matrix[row] += delta
        self.reconciliations += 1

    @property
    def pending_rows(self) -> int:
        """Number of rows with unreconciled local deltas."""
        return len(self._deltas)
