"""Parallel training substrate: locks, caching, threaded SGD, scaling model."""

from repro.parallel.cache import FactorCache
from repro.parallel.locks import RWLock, StripedLockManager
from repro.parallel.simulator import (
    ParallelProfile,
    SimulatedEpoch,
    epoch_time_curve,
    mf_profile,
    simulate_epoch,
    speedup_curve,
    tf_profile,
)
from repro.parallel.trainer import (
    ThreadedEpochStats,
    ThreadedSGDEngine,
    ThreadedSGDTrainer,
)

__all__ = [
    "RWLock",
    "StripedLockManager",
    "FactorCache",
    "ThreadedSGDEngine",
    "ThreadedSGDTrainer",
    "ThreadedEpochStats",
    "ParallelProfile",
    "SimulatedEpoch",
    "simulate_epoch",
    "speedup_curve",
    "epoch_time_curve",
    "mf_profile",
    "tf_profile",
]
