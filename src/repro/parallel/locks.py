"""Row-level locking for shared factor matrices (paper Sec. 6.1).

The paper's C++ implementation takes a read lock on every factor row it
reads and a write lock on every row it updates.  We provide:

* :class:`RWLock` — a classic readers-writer lock;
* :class:`StripedLockManager` — maps matrix rows onto a bounded pool of
  locks (striping) and hands out *deadlock-free* multi-row acquisitions by
  always locking stripes in ascending order.

Lock statistics (acquisitions, contended acquisitions) are counted so the
experiments can report contention, which is the quantity the paper's
caching heuristic attacks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, List, Sequence

from repro.utils.validation import check_positive


class RWLock:
    """A readers-writer lock: many readers or one writer."""

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire_read(self) -> None:
        """Block until no writer holds the lock, then enter as a reader."""
        with self._condition:
            while self._writer:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the reader section, waking writers when it empties."""
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is free, then enter as the sole writer."""
        with self._condition:
            while self._writer or self._readers > 0:
                self._condition.wait()
            self._writer = True

    def release_write(self) -> None:
        """Release the writer slot and wake all waiters."""
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def reading(self):
        """Context manager for a read-locked section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self):
        """Context manager for a write-locked section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class StripedLockManager:
    """A fixed pool of mutexes guarding the rows of a factor matrix.

    Row ``r`` maps to stripe ``r % n_stripes``.  Multi-row acquisition
    deduplicates and sorts stripes, which makes the locking order global
    and therefore deadlock-free across threads.
    """

    def __init__(self, n_stripes: int = 1024):
        check_positive("n_stripes", n_stripes)
        self.n_stripes = int(n_stripes)
        self._locks: List[threading.Lock] = [
            threading.Lock() for _ in range(self.n_stripes)
        ]
        self._stats_lock = threading.Lock()
        self.acquisitions = 0
        self.contended = 0

    def stripe_of(self, row: int) -> int:
        """Stripe index guarding *row*."""
        return row % self.n_stripes

    def _stripes_for(self, rows: Iterable[int]) -> List[int]:
        return sorted({r % self.n_stripes for r in rows})

    @contextmanager
    def locking(self, rows: Sequence[int]):
        """Hold the (deduplicated, ordered) stripe locks for *rows*."""
        stripes = self._stripes_for(rows)
        acquired: List[threading.Lock] = []
        contended = 0
        try:
            for stripe in stripes:
                lock = self._locks[stripe]
                if not lock.acquire(blocking=False):
                    contended += 1
                    lock.acquire()
                acquired.append(lock)
            with self._stats_lock:
                self.acquisitions += len(stripes)
                self.contended += contended
            yield
        finally:
            for lock in reversed(acquired):
                lock.release()

    def reset_stats(self) -> None:
        """Zero the acquisition counters."""
        with self._stats_lock:
            self.acquisitions = 0
            self.contended = 0

    @property
    def contention_rate(self) -> float:
        """Fraction of acquisitions that found the lock already held."""
        with self._stats_lock:
            if self.acquisitions == 0:
                return 0.0
            return self.contended / self.acquisitions
