"""Snapshot exporters: Prometheus text, JSON lines, and a human table.

Everything here consumes the ``repro.obs/v1`` snapshot dict produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` — exporters are pure
functions of that dict, so a snapshot written to disk during a run can
be re-rendered in any format afterwards (``repro stats --snapshot``).

Examples
--------
>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("repro_demo_total", labels={"shard": "0"}).inc(2)
>>> print(to_prometheus_text(registry.snapshot()).strip())
# TYPE repro_demo_total counter
repro_demo_total{shard="0"} 2.0
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = [
    "merge_snapshots",
    "read_snapshot",
    "to_json_lines",
    "to_prometheus_text",
    "to_table",
    "write_snapshot",
]


def _label_suffix(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{value}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand to the
    conventional ``_bucket{le=...}`` cumulative series plus ``_sum`` and
    ``_count``.  Series order follows the snapshot (already sorted by
    name and labels), so output is deterministic.
    """
    lines: List[str] = []
    typed: set = set()
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        labels = dict(metric.get("labels", {}))
        if name not in typed:
            help_text = str(metric.get("help", "")).strip()
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric['type']}")
            typed.add(name)
        if metric["type"] in ("counter", "gauge"):
            lines.append(
                f"{name}{_label_suffix(labels)} {float(metric['value'])}"
            )
            continue
        cumulative = 0
        for bound, count in zip(metric["buckets"], metric["counts"]):
            cumulative += count
            suffix = _label_suffix(labels, {"le": repr(float(bound))})
            lines.append(f"{name}_bucket{suffix} {cumulative}")
        cumulative += metric["counts"][len(metric["buckets"])]
        suffix = _label_suffix(labels, {"le": "+Inf"})
        lines.append(f"{name}_bucket{suffix} {cumulative}")
        lines.append(
            f"{name}_sum{_label_suffix(labels)} {float(metric['sum'])}"
        )
        lines.append(f"{name}_count{_label_suffix(labels)} {cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_lines(snapshot: Dict[str, object]) -> str:
    """Render a snapshot as one JSON object per line, one per series.

    Each line is self-describing (name, type, labels, values), so the
    output can be tailed, grepped, or loaded row-by-row without holding
    the whole snapshot.  Keys are sorted for byte-stable output.
    """
    lines = [
        json.dumps(metric, sort_keys=True)
        for metric in snapshot.get("metrics", [])
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_percentile(metric: Dict[str, object], q: float) -> float:
    """Percentile from an exported histogram record (mirrors Histogram)."""
    bounds = [float(b) for b in metric["buckets"]]
    counts = [int(c) for c in metric["counts"]]
    total = sum(counts)
    if total == 0:
        return float("nan")
    target = (q / 100.0) * total
    cumulative = 0
    for slot, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            if slot >= len(bounds):
                return bounds[-1]
            lo = 0.0 if slot == 0 else bounds[slot - 1]
            hi = bounds[slot]
            fraction = (target - cumulative) / bucket_count
            return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
        cumulative += bucket_count
    return bounds[-1]


def to_table(snapshot: Dict[str, object]) -> str:
    """Render a snapshot as a fixed-width human-readable table.

    Counters and gauges print their value; histograms print count, mean,
    interpolated p50/p95/p99, and — whenever any observation landed past
    the last bucket bound — an explicit ``+Inf=N`` overflow cell, so
    latencies beyond the bucket ladder (e.g. >60s on the default ladder)
    are visible instead of silently saturating the percentiles.
    """
    rows: List[tuple] = [("metric", "labels", "value")]
    for metric in snapshot.get("metrics", []):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(metric.get("labels", {}).items())
        )
        if metric["type"] in ("counter", "gauge"):
            rows.append((metric["name"], labels, f"{float(metric['value']):g}"))
            continue
        count = int(metric["count"])
        if count:
            mean = float(metric["sum"]) / count
            cells = (
                f"count={count} mean={mean * 1e3:.3f}ms "
                f"p50={_histogram_percentile(metric, 50.0) * 1e3:.3f}ms "
                f"p95={_histogram_percentile(metric, 95.0) * 1e3:.3f}ms "
                f"p99={_histogram_percentile(metric, 99.0) * 1e3:.3f}ms"
            )
            overflow = int(metric["counts"][len(metric["buckets"])])
            if overflow:
                cells += f" +Inf={overflow}"
        else:
            cells = "count=0"
        rows.append((metric["name"], labels, cells))
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines) + "\n"


def write_snapshot(path, snapshot: Dict[str, object]) -> None:
    """Write a snapshot dict to *path* as stable, indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_snapshot(path) -> Dict[str, object]:
    """Load a snapshot previously written by :func:`write_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if snapshot.get("schema") != "repro.obs/v1":
        raise ValueError(
            f"{path} is not a repro.obs/v1 snapshot "
            f"(schema={snapshot.get('schema')!r})"
        )
    return snapshot


def merge_snapshots(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Concatenate the metric lists of several snapshots into one.

    Series identity is not re-keyed: callers that need distinct series
    per source (e.g. per shard) are expected to have labeled them
    (``{"shard": "3"}``) before snapshotting.  Output stays sorted by
    ``(name, labels)`` so merged snapshots remain deterministic.
    """
    metrics: List[Dict[str, object]] = []
    for snapshot in snapshots:
        metrics.extend(snapshot.get("metrics", []))
    metrics.sort(
        key=lambda m: (m["name"], sorted(m.get("labels", {}).items()))
    )
    return {"schema": "repro.obs/v1", "metrics": metrics}
