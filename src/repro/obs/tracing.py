"""Request tracing: spans, deterministic IDs, and cross-process stitching.

A *span* is one timed region of work with a name, tags, and a parent —
together the spans of a request form a tree rooted at the span
:meth:`RecommenderService.recommend_batch` opens.  The pieces here are
sized for the repository's fleet, not for a general APM product:

* **Deterministic IDs.**  Trace and span IDs come from per-tracer
  counters (``t1``, ``t1.s3``), never from ``uuid`` or a global RNG —
  the analysis linter (REP001) bans unseeded randomness, and tests that
  replay a seeded workload must get byte-identical trace structure.
  Worker processes derive their IDs from the :class:`SpanContext` they
  receive, so child spans from shard 2 can never collide with shard 5's.
* **Monotonic time only.**  Starts are ``time.monotonic()`` stamps.  On
  Linux the monotonic clock is shared machine-wide, which is what lets a
  worker measure *queue wait* as ``monotonic() - ctx.sent_at`` for a
  context stamped on the router side; the difference is clamped at zero
  so clock-granularity jitter never produces a negative wait.
* **Durations travel, absolute times do not.**  Exported span records
  carry ``duration_s`` (and the queue-wait measurement as a tag), never
  wall-clock timestamps, so a trace file is reproducible modulo timing
  noise and diffable across machines.

Examples
--------
>>> tracer = Tracer(prefix="t")
>>> with tracer.span("recommend_batch", tags={"batch": 4}) as root:
...     with tracer.span("scan") as child:
...         pass
>>> child.parent_id == root.span_id
True
>>> [s.name for s in tracer.buffer.drain()]
['scan', 'recommend_batch']
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "TraceBuffer",
    "Tracer",
    "current_span",
    "current_trace_id",
    "read_trace_jsonl",
    "stitch",
    "write_trace_jsonl",
]

#: Per-thread stack of active spans, shared by every tracer in the
#: process so ``current_trace_id()`` works from code (like the JSON log
#: formatter) that has no tracer reference.
_active = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = []
        _active.stack = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost span open on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    """The trace ID of the innermost open span, or ``None``.

    This is the hook :class:`repro.utils.logging.JsonFormatter` uses to
    stamp log records with the request they were emitted under.
    """
    span = current_span()
    return span.trace_id if span is not None else None


@dataclass
class Span:
    """One timed region of work inside a trace tree.

    Use it as a context manager (via :meth:`Tracer.span`) so the
    duration is measured and the span lands in the tracer's buffer even
    when the body raises.
    """

    trace_id: str
    span_id: str
    name: str
    parent_id: Optional[str] = None
    tags: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0  # process-local time.monotonic() stamp
    duration_s: Optional[float] = None
    _tracer: Optional["Tracer"] = field(default=None, repr=False)

    def set_tag(self, key: str, value: object) -> None:
        """Attach one key/value annotation to the span."""
        self.tags[key] = value

    def finish(self) -> None:
        """Stamp the duration and hand the span to its tracer's buffer."""
        if self.duration_s is None:
            self.duration_s = time.monotonic() - self.start
        if self._tracer is not None:
            self._tracer._record(self)

    def __enter__(self) -> "Span":
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self.finish()

    def as_dict(self) -> Dict[str, object]:
        """The JSONL record for this span (durations, never wall time)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "tags": dict(self.tags),
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class SpanContext:
    """The picklable slice of a span that crosses the shard pipe.

    ``sent_at`` is the router-side ``time.monotonic()`` stamp taken just
    before the request is written to the pipe; the worker's first child
    span reads the same machine-wide clock to measure queue wait.
    """

    trace_id: str
    span_id: str
    sent_at: float

    def queue_wait(self) -> float:
        """Seconds spent between send and now, clamped at zero."""
        return max(0.0, time.monotonic() - self.sent_at)


class TraceBuffer:
    """A bounded FIFO of finished spans (oldest evicted first).

    Bounded so a long-lived service cannot leak memory through its own
    telemetry; ``maxlen`` spans is the retention contract, full stop.
    """

    def __init__(self, maxlen: int = 4096):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=maxlen)

    def append(self, span: Span) -> None:
        """Retain *span*, evicting the oldest if at capacity."""
        with self._lock:
            self._spans.append(span)

    def extend(self, spans: Iterable[Span]) -> None:
        """Retain every span in *spans* in order."""
        with self._lock:
            self._spans.extend(spans)

    def snapshot(self) -> List[Span]:
        """The retained spans, oldest first, without clearing."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Return and clear the retained spans."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Mint spans with deterministic IDs and collect them in a buffer.

    Parameters
    ----------
    prefix:
        Namespace for every ID this tracer mints.  The router uses the
        default; each shard worker gets ``w<shard>`` so IDs minted on
        both sides of the pipe can never collide.
    buffer:
        Optional shared :class:`TraceBuffer`; a private one is created
        when omitted.

    Examples
    --------
    >>> tracer = Tracer(prefix="w3")
    >>> with tracer.span("scan") as span:
    ...     pass
    >>> span.trace_id, span.span_id
    ('w3-t1', 'w3-s1')
    """

    def __init__(self, prefix: str = "t", buffer: Optional[TraceBuffer] = None):
        self.prefix = prefix
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self._lock = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    def _next_trace_id(self) -> str:
        with self._lock:
            return f"{self.prefix}-t{next(self._trace_ids)}"

    def _next_span_id(self) -> str:
        with self._lock:
            return f"{self.prefix}-s{next(self._span_ids)}"

    def span(
        self,
        name: str,
        tags: Optional[Dict[str, object]] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """Open a span; use as a context manager to time and record it.

        With no explicit *parent* the innermost span open on this thread
        is used, so nested ``with tracer.span(...)`` blocks form a tree
        without any threading of parent handles.  A span with no parent
        starts a new trace.
        """
        if parent is None:
            parent = current_span()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._next_trace_id()
            parent_id = None
        return Span(
            trace_id=trace_id,
            span_id=self._next_span_id(),
            name=name,
            parent_id=parent_id,
            tags=dict(tags) if tags else {},
            start=time.monotonic(),
            _tracer=self,
        )

    def child_from_context(
        self,
        ctx: SpanContext,
        name: str,
        tags: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span under a remote parent received over the pipe."""
        merged = dict(tags) if tags else {}
        return Span(
            trace_id=ctx.trace_id,
            span_id=self._next_span_id(),
            name=name,
            parent_id=ctx.span_id,
            tags=merged,
            start=time.monotonic(),
            _tracer=self,
        )

    def context_for(self, span: Span) -> SpanContext:
        """A pipe-ready :class:`SpanContext` stamped *now*."""
        return SpanContext(
            trace_id=span.trace_id,
            span_id=span.span_id,
            sent_at=time.monotonic(),
        )

    def _record(self, span: Span) -> None:
        self.buffer.append(span)

    def adopt(self, records: Iterable[Dict[str, object]]) -> List[Span]:
        """Rehydrate exported span records (e.g. from a worker) and buffer them.

        The router calls this on the ``span_records`` a traced shard
        response carries, so one buffer ends up holding the whole tree.
        """
        spans = [
            Span(
                trace_id=str(rec["trace_id"]),
                span_id=str(rec["span_id"]),
                name=str(rec["name"]),
                parent_id=rec.get("parent_id"),
                tags=dict(rec.get("tags", {})),
                duration_s=rec.get("duration_s"),
            )
            for rec in records
        ]
        self.buffer.extend(spans)
        return spans


def stitch(records: Iterable) -> List[Dict[str, object]]:
    """Assemble span records (or :class:`Span` objects) into trace trees.

    Returns one dict per trace, ordered by trace ID, each with the shape
    ``{"trace_id": ..., "root": node}`` where every node is
    ``{"span": record, "children": [...]}``.  Orphans (a parent that
    never arrived) are promoted to roots rather than dropped — a trace
    missing its root should still be inspectable.  Children are ordered
    by span ID, which is deterministic because IDs are counter-minted.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("root"):
    ...     with tracer.span("child"):
    ...         pass
    >>> trees = stitch(tracer.buffer.drain())
    >>> trees[0]["root"]["span"]["name"]
    'root'
    >>> [c["span"]["name"] for c in trees[0]["root"]["children"]]
    ['child']
    """
    flat: List[Dict[str, object]] = []
    for rec in records:
        flat.append(rec.as_dict() if isinstance(rec, Span) else dict(rec))
    nodes = {
        rec["span_id"]: {"span": rec, "children": []} for rec in flat
    }
    roots_by_trace: Dict[str, List[Dict[str, object]]] = {}
    for rec in sorted(flat, key=lambda r: str(r["span_id"])):
        node = nodes[rec["span_id"]]
        parent_id = rec.get("parent_id")
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id]["children"].append(node)
        else:
            roots_by_trace.setdefault(str(rec["trace_id"]), []).append(node)
    trees = []
    for trace_id in sorted(roots_by_trace):
        for root in roots_by_trace[trace_id]:
            trees.append({"trace_id": trace_id, "root": root})
    return trees


def write_trace_jsonl(path, spans: Iterable) -> int:
    """Append span records to *path* as JSON lines; returns lines written.

    Accepts :class:`Span` objects or already-exported record dicts.
    """
    written = 0
    with open(path, "a", encoding="utf-8") as handle:
        for rec in spans:
            record = rec.as_dict() if isinstance(rec, Span) else dict(rec)
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
    return written


def read_trace_jsonl(path) -> List[Dict[str, object]]:
    """Load span records previously written by :func:`write_trace_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
