"""Thread-safe metrics primitives with reproducible snapshots.

The registry is the single accounting surface the rest of the library
records into: :class:`Counter` (monotonic totals), :class:`Gauge` (last
written value), and :class:`Histogram` (fixed-bucket distributions).
Three properties are deliberate and load-bearing:

* **Deterministic bucket bounds.**  Histograms never adapt their buckets
  to the data; the bounds are fixed at construction (default:
  :data:`DEFAULT_LATENCY_BUCKETS`).  Two runs of the same seeded
  workload therefore produce snapshots with the same shape — same
  metric names, same buckets, same counting values — which is what lets
  snapshots be diffed, archived next to benchmark payloads, and asserted
  on in tests.
* **O(1) weighted observation.**  ``Histogram.observe(value, count=n)``
  accounts *n* identical observations in constant time, so a batch of
  10k requests records its amortized per-request latency without
  materializing 10k list entries (the failure mode the old
  ``ServingStats.latencies`` window had).
* **Symmetric locking.**  Every mutation and every read of an
  instrument's state holds that instrument's lock, so counters shared by
  request threads during a hot swap never lose increments to racy
  read-modify-writes.

Metric naming follows the Prometheus convention documented in
``docs/observability.md``: ``repro_<subsystem>_<noun>_<unit>`` with
``_total`` for counters and base units (seconds) for histograms.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("repro_demo_requests_total").inc(3)
>>> registry.histogram("repro_demo_latency_seconds").observe(0.004, count=2)
>>> snap = registry.snapshot()
>>> [m["name"] for m in snap["metrics"]]
['repro_demo_latency_seconds', 'repro_demo_requests_total']
>>> snap["metrics"][1]["value"]
3.0
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bounds for request/epoch latencies, in seconds.
#: A fixed 1-2.5-5 ladder from 100µs to 60s — wide enough for a fleet
#: swap, fine enough to separate a cache hit from a dense scan.  Fixed
#: (never data-adaptive) so snapshots are reproducible across runs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)

#: Label sets are stored as a sorted tuple of (key, value) pairs so two
#: call sites naming the same labels in different order share one series.
LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Optional[Dict[str, str]]) -> LabelPairs:
    """Normalize a labels dict into the registry's canonical key form."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total (requests served, events applied).

    Examples
    --------
    >>> c = Counter("repro_demo_total")
    >>> c.inc()
    >>> c.inc(2.5)
    >>> c.value
    3.5
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(_label_pairs(labels))
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0: counters only ever go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value

    def as_dict(self) -> Dict[str, object]:
        """One snapshot record (see :meth:`MetricsRegistry.snapshot`)."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (live generation, queue depth).

    Examples
    --------
    >>> g = Gauge("repro_demo_generation")
    >>> g.set(3)
    >>> g.inc(); g.dec(2)
    >>> g.value
    2.0
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ):
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(_label_pairs(labels))
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* to the current value."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the current value."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """The last written value."""
        with self._lock:
            return self._value

    def as_dict(self) -> Dict[str, object]:
        """One snapshot record (see :meth:`MetricsRegistry.snapshot`)."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket distribution with O(1) weighted observation.

    Parameters
    ----------
    name, help, labels:
        Metric identity (see :class:`MetricsRegistry`).
    buckets:
        Strictly increasing upper bounds; an implicit ``+Inf`` overflow
        bucket is always appended.  Defaults to
        :data:`DEFAULT_LATENCY_BUCKETS`.  Bounds are frozen at
        construction — deterministic snapshots depend on it.

    Examples
    --------
    >>> h = Histogram("repro_demo_seconds", buckets=(1.0, 2.0, 4.0))
    >>> h.observe(0.5); h.observe(1.5, count=2); h.observe(100.0)
    >>> (h.count, h.sum)
    (4, 103.5)
    >>> h.bucket_counts
    (1, 2, 0, 1)
    >>> round(h.percentile(50.0), 3)
    1.5
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name} needs strictly increasing bounds, "
                f"got {bounds}"
            )
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(_label_pairs(labels))
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float, count: int = 1) -> None:
        """Account *count* observations of *value* in O(log buckets).

        ``count > 1`` is the batch-amortized path: a batch that served
        *count* requests in ``total`` seconds records
        ``observe(total / count, count=count)`` — one bucket increment,
        however large the batch.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        slot = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[slot] += count
            self._sum += value * count
            self._count += count

    @property
    def count(self) -> int:
        """Total observations (including weighted counts)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value (weighted)."""
        with self._lock:
            return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket observation counts (last entry is the overflow)."""
        with self._lock:
            return tuple(self._counts)

    def percentile(self, q: float) -> float:
        """The *q*-th percentile, linearly interpolated within its bucket.

        Deterministic given deterministic counts: the answer depends only
        on the (fixed) bounds and the bucket populations, never on
        insertion order.  Returns ``nan`` when empty; observations in the
        overflow bucket report the largest finite bound (a floor, clearly
        documented rather than invented).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return float("nan")
        target = (q / 100.0) * total
        cumulative = 0
        for slot, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if slot >= len(self.bounds):  # overflow: no finite upper edge
                    return self.bounds[-1]
                lo = 0.0 if slot == 0 else self.bounds[slot - 1]
                hi = self.bounds[slot]
                fraction = (target - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.bounds[-1]  # pragma: no cover - q=100 exits in-loop

    def as_dict(self) -> Dict[str, object]:
        """One snapshot record (see :meth:`MetricsRegistry.snapshot`)."""
        with self._lock:
            counts = tuple(self._counts)
            total = self._count
            observed_sum = self._sum
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "buckets": list(self.bounds),
            "counts": list(counts),
            "count": total,
            "sum": observed_sum,
        }


#: What lives in a registry slot.
_Instrument = object


class MetricsRegistry:
    """Get-or-create registry of named instruments, one per label set.

    The registry is the unit of telemetry scope: each
    :class:`~repro.serving.service.ServingStats` /
    :class:`~repro.streaming.updater.StreamingStats` /
    :class:`~repro.train.base.Trainer` owns (or is handed) one, and a CLI
    run that wants "one snapshot showing the whole system" threads a
    single shared registry through every component it builds.

    All three accessors are **get-or-create**: asking twice for the same
    ``(name, labels)`` returns the same instrument, and asking for an
    existing name with a different instrument kind raises — silent
    double-registration is how two subsystems end up fighting over one
    counter.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> a = registry.counter("repro_demo_total", labels={"shard": "0"})
    >>> b = registry.counter("repro_demo_total", labels={"shard": "0"})
    >>> a is b
    True
    >>> registry.gauge("repro_demo_total")
    Traceback (most recent call last):
        ...
    ValueError: metric 'repro_demo_total' is already registered as a counter, not a gauge
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], _Instrument] = {}
        self._kinds: Dict[str, str] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, _label_pairs(labels))
        with self._lock:
            registered_kind = self._kinds.get(name)
            if registered_kind is not None and registered_kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{registered_kind}, not a {cls.kind}"
                )
            existing = self._metrics.get(key)
            if existing is not None:
                return existing
            instrument = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = instrument
            self._kinds[name] = cls.kind
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Counter:
        """The counter *name* with *labels*, created on first request."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Gauge:
        """The gauge *name* with *labels*, created on first request."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram *name* with *labels*, created on first request.

        *buckets* only applies on creation; a later caller naming the
        same series gets the original bounds (they are part of the
        series' identity — changing them mid-run would corrupt the
        distribution).
        """
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda kv: kv[0])
        return [instrument for _key, instrument in items]

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready snapshot of every instrument.

        Deterministically ordered by ``(name, labels)``, so two snapshots
        of identically-counted registries are structurally identical —
        the format ``repro stats --snapshot`` and the exporters in
        :mod:`repro.obs.export` consume.
        """
        return {
            "schema": "repro.obs/v1",
            "metrics": [inst.as_dict() for inst in self.instruments()],
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
