"""Unified runtime telemetry: metrics registry, tracing, and exporters.

``repro.obs`` is the stdlib-only observability layer the serving,
streaming, and training subsystems record into.  It has three pieces:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms with deterministic
  snapshots (same workload → same snapshot shape and counts).
* :mod:`repro.obs.tracing` — request spans with deterministic
  counter-minted IDs, a picklable :class:`SpanContext` that crosses the
  :class:`~repro.serving.sharding.ShardRouter` pipe so per-shard child
  spans (queue wait, scan, merge) stitch into one tree, a bounded
  :class:`TraceBuffer`, and a JSONL sink.
* :mod:`repro.obs.export` — Prometheus-text / JSON-lines / table
  renderers over saved or live snapshots, consumed by ``repro stats``.

Design constraints (enforced by the ``repro.analysis`` linter and the
``bench_serving.py`` overhead gate): monotonic clocks only, symmetric
lock guards, no global mutable default registry, and total
instrumentation overhead ≤5% on the serving hot path.
"""

from repro.obs.export import (
    merge_snapshots,
    read_snapshot,
    to_json_lines,
    to_prometheus_text,
    to_table,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    TraceBuffer,
    Tracer,
    current_span,
    current_trace_id,
    read_trace_jsonl,
    stitch,
    write_trace_jsonl,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "TraceBuffer",
    "Tracer",
    "current_span",
    "current_trace_id",
    "merge_snapshots",
    "read_snapshot",
    "read_trace_jsonl",
    "stitch",
    "to_json_lines",
    "to_prometheus_text",
    "to_table",
    "write_snapshot",
    "write_trace_jsonl",
]
