"""Non-personalized baselines: popularity and random ranking.

These are sanity anchors for the experiments: any trained model must beat
random by a wide margin and popularity by a meaningful one before the
taxonomy comparisons are interesting.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.topk import top_k, top_k_rows
from repro.data.transactions import TransactionLog
from repro.utils.rng import RngLike, ensure_rng


class PopularityModel:
    """Rank items by global purchase count (ties broken by item id)."""

    def __init__(self):
        self._scores: Optional[np.ndarray] = None

    def fit(self, log: TransactionLog) -> "PopularityModel":
        """Count purchases per item over *log* and freeze the ranking."""
        return self._fit_counts(log.item_counts())

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "PopularityModel":
        """A fitted model from precomputed per-item purchase counts.

        The streaming updater maintains counts incrementally, so a
        hot-swap can publish a fresh fallback without re-scanning the
        whole accumulated log.
        """
        return cls()._fit_counts(counts)

    def _fit_counts(self, counts: np.ndarray) -> "PopularityModel":
        counts = np.asarray(counts, dtype=np.float64)
        # An id-based epsilon makes the ranking total and deterministic.
        jitter = np.arange(counts.size, dtype=np.float64) * 1e-9
        self._scores = counts + jitter
        return self

    def score_items(
        self,
        user: int,
        history: Optional[Sequence[np.ndarray]] = None,
        items: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Popularity scores (same for every user), optionally per *items*."""
        if self._scores is None:
            raise RuntimeError("call fit() before scoring")
        if items is None:
            return self._scores.copy()
        return self._scores[np.asarray(items, dtype=np.int64)]

    def score_matrix(
        self, users: np.ndarray, histories=None
    ) -> np.ndarray:
        """The popularity score row broadcast to one row per user."""
        if self._scores is None:
            raise RuntimeError("call fit() before scoring")
        return np.tile(self._scores, (len(users), 1))

    def recommend(self, user: int, k: int = 10, **_ignored) -> np.ndarray:
        """Top-*k* most-purchased items (ties broken by item id)."""
        scores = self.score_items(user)
        return top_k(scores, min(k, scores.size))

    def recommend_batch(
        self, users: np.ndarray, k: int = 10, histories=None, **_ignored
    ) -> np.ndarray:
        """Batched top-*k*: one ranking pass, broadcast to every row."""
        row = self.recommend(0, k=k)
        return np.tile(row, (len(users), 1))


class RandomModel:
    """Uniform random ranking — the floor every model must clear."""

    def __init__(self, seed: RngLike = 0):
        # Remembered for ModelBundle round-trips; a Generator seed has no
        # recoverable integer and is stored as None (fresh entropy on load).
        self.seed = int(seed) if isinstance(seed, (int, np.integer)) else None
        self._rng = ensure_rng(seed)
        self._n_items: Optional[int] = None

    def fit(self, log: TransactionLog) -> "RandomModel":
        """Record the item universe size; no learning happens."""
        self._n_items = log.n_items
        return self

    def score_items(
        self,
        user: int,
        history: Optional[Sequence[np.ndarray]] = None,
        items: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """A fresh uniform draw per call (the generator advances)."""
        if self._n_items is None:
            raise RuntimeError("call fit() before scoring")
        size = self._n_items if items is None else len(items)
        return self._rng.random(size)

    def score_matrix(self, users: np.ndarray, histories=None) -> np.ndarray:
        """One uniform draw per (user, item) cell, row order = *users*."""
        if self._n_items is None:
            raise RuntimeError("call fit() before scoring")
        return self._rng.random((len(users), self._n_items))

    def recommend(self, user: int, k: int = 10, **_ignored) -> np.ndarray:
        """Top-*k* by the user's random draw (canonical tie order)."""
        scores = self.score_items(user)
        return top_k(scores, min(k, scores.size))

    def recommend_batch(
        self, users: np.ndarray, k: int = 10, histories=None, **_ignored
    ) -> np.ndarray:
        """Batched top-*k*.  The generator emits one stream of doubles, so
        row *i* sees exactly the draws the *i*-th sequential
        :meth:`recommend` call would have seen."""
        return top_k_rows(self.score_matrix(users), k)
