"""Cascaded inference (paper Sec. 5.1, Fig. 4).

Naive top-k inference scores every item — millions of dot products per
user.  Cascaded inference walks the taxonomy top-down instead: score the
top-level categories, keep the best ``k_1`` fraction, descend into their
children, keep ``k_2``, and so on; only the items under the surviving
lowest-level categories are ever scored.  This trades accuracy (a pruned
subtree can hide a relevant item) for computation, which Fig. 8(c,d)
quantifies.

Work is measured in *scored nodes* — the count of affinity dot products —
which is hardware-independent; wall-clock time is also reported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import merge_top_k_pages, top_k_pairs
from repro.taxonomy.tree import ROOT, Taxonomy
from repro.utils.config import CascadeConfig


@dataclass
class CascadeResult:
    """Outcome of one cascaded ranking pass for one user."""

    items: np.ndarray  # surviving items, best first
    scores: np.ndarray  # their affinity scores (same order)
    nodes_scored: int  # dot products spent (work measure)
    frontier_sizes: List[int] = field(default_factory=list)
    seconds: float = 0.0

    def top_k(self, k: int) -> np.ndarray:
        """The best *k* surviving items."""
        return self.items[:k]

    def full_scores(self, n_items: int) -> np.ndarray:
        """Scores over the whole item universe; pruned items get ``-inf``.

        Feeding this into the AUC metric treats pruned items as tied at the
        bottom of the ranking, which is how the accuracy-ratio curves of
        Fig. 8(c,d) penalize over-aggressive pruning.
        """
        scores = np.full(n_items, -np.inf)
        scores[self.items] = self.scores
        return scores


class CascadedRecommender:
    """Taxonomy-pruned inference wrapper around a trained TF model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.tf_model.TaxonomyFactorModel`.
    config:
        ``keep_fractions[d]`` is the paper's ``k_{d+1}``: the fraction of
        *internal* nodes kept at depth ``d + 1``.  Items under surviving
        lowest-level categories are always all scored (the paper prunes
        categories, then ranks the remaining items).
    """

    def __init__(self, model: TaxonomyFactorModel, config: Optional[CascadeConfig] = None):
        if config is None:
            config = CascadeConfig()
        self.model = model
        self.config = config
        self.taxonomy: Taxonomy = model.taxonomy

    # ------------------------------------------------------------------
    def rank(
        self,
        user: int,
        history: Optional[Sequence[np.ndarray]] = None,
    ) -> CascadeResult:
        """Run the cascade for one user and rank the surviving items."""
        started = time.perf_counter()
        taxonomy = self.taxonomy
        factor_set = self.model.factor_set
        query = self.model.query_vector(user, history)

        frontier = taxonomy.children(ROOT)
        nodes_scored = 0
        frontier_sizes: List[int] = []
        survivors: List[np.ndarray] = []
        survivor_scores: List[np.ndarray] = []
        depth = 0
        while frontier.size:
            frontier_sizes.append(int(frontier.size))
            scores = (
                factor_set.effective_nodes(frontier) @ query
                + factor_set.bias_of_nodes(frontier)
            )
            nodes_scored += int(frontier.size)

            leaf_mask = taxonomy.items_of_nodes(frontier) >= 0
            if leaf_mask.any():
                survivors.append(taxonomy.items_of_nodes(frontier[leaf_mask]))
                survivor_scores.append(scores[leaf_mask])
            internal = frontier[~leaf_mask]
            if internal.size == 0:
                break
            internal_scores = scores[~leaf_mask]

            fraction = self._fraction_at(depth)
            keep = max(
                self.config.min_keep,
                int(np.ceil(fraction * internal.size)),
            )
            keep = min(keep, internal.size)
            # Boundary ties break on ascending node id, so the pruned
            # frontier (and hence the whole cascade) is deterministic.
            kept = top_k_pairs(internal, internal_scores, keep)
            frontier = (
                np.concatenate([taxonomy.children(int(v)) for v in kept])
                if kept.size
                else np.empty(0, dtype=np.int64)
            )
            depth += 1

        if survivors:
            items = np.concatenate(survivors)
            scores = np.concatenate(survivor_scores)
            ranked, ranked_scores = merge_top_k_pages(
                [items[None, :]], [scores[None, :]], items.size
            )
            items = ranked[0]
            scores = ranked_scores[0]
        else:
            items = np.empty(0, dtype=np.int64)
            scores = np.empty(0, dtype=np.float64)
        return CascadeResult(
            items=items,
            scores=scores,
            nodes_scored=nodes_scored,
            frontier_sizes=frontier_sizes,
            seconds=time.perf_counter() - started,
        )

    def recommend(
        self,
        user: int,
        k: int = 10,
        history: Optional[Sequence[np.ndarray]] = None,
    ) -> np.ndarray:
        """Top-*k* items through the cascade (cheap, possibly approximate)."""
        return self.rank(user, history).top_k(k)

    def recommend_batch(
        self,
        users: np.ndarray,
        k: int = 10,
        histories: Optional[Sequence[Sequence[np.ndarray]]] = None,
    ) -> np.ndarray:
        """Cascaded top-*k* for a batch of users.

        The cascade's frontier walk is inherently per-user (each user prunes
        a different subtree), so this loops :meth:`rank`; it exists so the
        cascade satisfies the ``repro.serving`` batch protocol and can be
        dropped into :class:`~repro.serving.service.RecommenderService`.
        Rows are padded with ``-1`` when fewer than *k* items survive.
        """
        users = np.asarray(users, dtype=np.int64)
        width = min(int(k), self.taxonomy.n_items)
        out = np.full((users.size, width), -1, dtype=np.int64)
        for row, user in enumerate(users):
            history = None if histories is None else histories[row]
            top = self.rank(int(user), history).top_k(width)
            out[row, : top.size] = top
        return out

    def naive_cost(self) -> int:
        """Nodes a full (non-cascaded) ranking pass would score.

        The exact method scores every item; expressing it in the same
        unit makes ``nodes_scored / naive_cost()`` the paper's
        "time ratio" x-axis analogue.
        """
        return self.taxonomy.n_items

    # ------------------------------------------------------------------
    def _fraction_at(self, depth: int) -> float:
        fractions = self.config.keep_fractions
        return fractions[min(depth, len(fractions) - 1)]


def uniform_cascade(
    model: TaxonomyFactorModel, fraction: float, levels: int = 3
) -> CascadedRecommender:
    """Cascade with the same keep-fraction at every internal level —
    the sweep of Fig. 8(c)."""
    return CascadedRecommender(
        model, CascadeConfig(keep_fractions=(fraction,) * levels)
    )


def leaf_only_cascade(
    model: TaxonomyFactorModel, fraction: float, levels: int = 3
) -> CascadedRecommender:
    """Cascade that keeps everything except at the lowest internal level —
    the sweep of Fig. 8(d) (``k_1 = k_2 = 100%``, vary ``k_3``)."""
    fractions = (1.0,) * (levels - 1) + (fraction,)
    return CascadedRecommender(model, CascadeConfig(keep_fractions=fractions))
