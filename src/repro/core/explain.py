"""Score explanations: decompose Eq. 3 along the taxonomy.

Because the TF model is *additive* — an item's factor is the sum of its
ancestors' offsets, its bias the sum of its ancestors' biases, and the
short-term term a weighted sum over previous items — every score splits
exactly into interpretable parts:

    s(j) = Σ_m ⟨q, w_{p^m(j)}⟩   (long-term, one term per taxonomy level)
         + Σ_m b_{p^m(j)}        (popularity, one term per level)
         + Σ_ℓ a_ℓ ⟨v^{I→•}_ℓ, v^I_j⟩   (short-term, one term per prev item)

This enables the category-targeting use cases of Sec. 1 ("target users by
product categories") and makes recommendations auditable: *why* did the
model rank this camera bag first — the user's affinity to CAMERAS, the
item's own history, or last week's camera purchase?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.affinity import context_items_weights
from repro.core.factors import KIND_NEXT
from repro.core.tf_model import TaxonomyFactorModel


@dataclass
class ScoreExplanation:
    """Exact additive decomposition of one user-item affinity score."""

    user: int
    item: int
    score: float
    #: ``(node id, ⟨query, w_node⟩)`` per chain level, item first.
    long_term_by_level: List[Tuple[int, float]]
    #: ``(node id, bias_node)`` per chain level, item first.
    bias_by_level: List[Tuple[int, float]]
    #: ``(previous item, weighted short-term contribution)``.
    short_term_by_item: List[Tuple[int, float]]

    @property
    def long_term(self) -> float:
        """Total long-term (user-factor) contribution."""
        return float(sum(v for _, v in self.long_term_by_level))

    @property
    def popularity(self) -> float:
        """Total bias contribution."""
        return float(sum(v for _, v in self.bias_by_level))

    @property
    def short_term(self) -> float:
        """Total Markov-term contribution."""
        return float(sum(v for _, v in self.short_term_by_item))

    def top_reason(self) -> str:
        """The dominant component, as a label."""
        parts = {
            "long-term interest": abs(self.long_term),
            "popularity": abs(self.popularity),
            "recent purchases": abs(self.short_term),
        }
        return max(parts, key=parts.get)

    def describe(self, taxonomy=None) -> str:
        """Human-readable multi-line breakdown."""
        lines = [
            f"score({self.user} -> item {self.item}) = {self.score:+.4f}"
        ]
        for node, value in self.long_term_by_level:
            name = taxonomy.name_of(node) if taxonomy is not None else f"node {node}"
            lines.append(f"  long-term   {name:30s} {value:+.4f}")
        for node, value in self.bias_by_level:
            name = taxonomy.name_of(node) if taxonomy is not None else f"node {node}"
            lines.append(f"  popularity  {name:30s} {value:+.4f}")
        for prev, value in self.short_term_by_item:
            lines.append(f"  short-term  after item {prev:<19d} {value:+.4f}")
        return "\n".join(lines)


def explain_score(
    model: TaxonomyFactorModel,
    user: int,
    item: int,
    history: Optional[Sequence[np.ndarray]] = None,
) -> ScoreExplanation:
    """Decompose ``model``'s score for ``(user, item)`` exactly.

    The parts sum to ``model.score_items(user, history)[item]`` (up to
    floating-point addition order).
    """
    fs = model.factor_set
    taxonomy = model.taxonomy
    if not 0 <= item < taxonomy.n_items:
        raise ValueError(f"item {item} out of range")
    history = model._history_for(user, history)
    query = model.query_vector(user, history)

    chain = [int(v) for v in fs.item_chains[item] if v != taxonomy.pad_id]
    long_term = [(node, float(query @ fs.w[node])) for node in chain]
    bias = [(node, float(fs.bias[node])) for node in chain]

    short_term: List[Tuple[int, float]] = []
    if model.config.markov_order > 0 and history:
        items, weights = context_items_weights(
            history, model.config.markov_order, model.config.alpha
        )
        if items.size:
            effective_item = fs.effective_items(np.asarray([item]))[0]
            next_factors = fs.effective_items(items, kind=KIND_NEXT)
            contributions = weights * (next_factors @ effective_item)
            # Merge duplicates (an item bought in several recent baskets).
            merged: Dict[int, float] = {}
            for prev, value in zip(items.tolist(), contributions.tolist()):
                merged[prev] = merged.get(prev, 0.0) + value
            short_term = sorted(merged.items(), key=lambda kv: -abs(kv[1]))
            # The query already contains the context; subtract it from the
            # long-term terms so the decomposition does not double count.
            user_only = fs.user[user]
            long_term = [
                (node, float(user_only @ fs.w[node])) for node in chain
            ]

    total = (
        sum(v for _, v in long_term)
        + sum(v for _, v in bias)
        + sum(v for _, v in short_term)
    )
    return ScoreExplanation(
        user=user,
        item=item,
        score=float(total),
        long_term_by_level=long_term,
        bias_by_level=bias,
        short_term_by_item=short_term,
    )


def explain_recommendations(
    model: TaxonomyFactorModel,
    user: int,
    k: int = 5,
    history: Optional[Sequence[np.ndarray]] = None,
    **recommend_kwargs,
) -> List[ScoreExplanation]:
    """Explanations for the user's top-*k* recommendations."""
    items = model.recommend(user, k=k, history=history, **recommend_kwargs)
    return [explain_score(model, user, int(item), history) for item in items]
