"""Latent factor storage for the TF model (paper Sec. 3).

A :class:`FactorSet` holds the three parameter families of Eq. 1-3:

* ``user`` — ``v^U_u``, one row per user;
* ``w`` — long-term offsets ``w^I_v``, one row per taxonomy node;
* ``w_next`` — next-item offsets ``w^{I→•}_v``, one row per node
  (allocated only when the Markov term is enabled);
* ``bias`` — scalar popularity offsets per node.  The paper notes bias
  terms exist in most latent factor models and elides them only "for
  simplicity of exposition"; we keep them (hierarchically: an item's bias
  is the sum along its chain, mirroring Eq. 1) because they carry the
  popularity signal BPR otherwise learns very slowly.

The *effective* factor of a node is the sum of ``w`` along its ancestor
chain, truncated to the bottom ``levels`` entries (the paper's
``taxonomyUpdateLevels``).  Chains are stored as padded index matrices; the
pad row (index ``n_nodes``) is pinned to zero so vectorized gathers need no
masking when *reading*.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.taxonomy.tree import Taxonomy
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in, check_positive

#: Selector for the long-term (`w`) vs. next-item (`w_next`) family.
KIND_LONG = "long"
KIND_NEXT = "next"


class FactorSet:
    """Factor matrices plus the padded ancestor-index machinery.

    Parameters
    ----------
    n_users:
        Number of users (rows of ``user``).
    taxonomy:
        The item taxonomy; factors are allocated for every node plus one
        zero pad row.
    factors:
        Latent dimensionality ``K``.
    levels:
        ``taxonomyUpdateLevels`` (``U``) — how many chain entries, counted
        from the node itself upward, contribute to effective factors.
        ``levels = 1`` reduces the model to a flat latent factor model.
    with_next:
        Allocate the ``w_next`` family (needed when ``markov_order > 0``).
    init_scale:
        Std-dev of the Gaussian initialization (the model's prior).
    """

    def __init__(
        self,
        n_users: int,
        taxonomy: Taxonomy,
        factors: int,
        levels: int,
        with_next: bool = True,
        init_scale: float = 0.1,
        seed: RngLike = None,
    ):
        check_positive("n_users", n_users)
        check_positive("factors", factors)
        check_positive("levels", levels)
        check_positive("init_scale", init_scale)
        rng = ensure_rng(seed)

        self.taxonomy = taxonomy
        self.n_users = int(n_users)
        self.factors = int(factors)
        self.levels = int(levels)
        self.init_scale = float(init_scale)

        n_rows = taxonomy.n_nodes + 1  # last row is the zero pad row
        self.user = rng.normal(0.0, init_scale, size=(n_users, factors))
        self.w = rng.normal(0.0, init_scale, size=(n_rows, factors))
        self.w[-1] = 0.0
        if with_next:
            self.w_next: Optional[np.ndarray] = rng.normal(
                0.0, init_scale, size=(n_rows, factors)
            )
            self.w_next[-1] = 0.0
        else:
            self.w_next = None
        self.bias = np.zeros(n_rows, dtype=np.float64)

        self._build_chains()

    def _build_chains(self) -> None:
        """Padded ancestor chains, truncated to ``levels`` columns.

        Node rows are extended with one extra row (for the pad id) that
        chains to itself, so vectorized gathers through pad indices stay
        inside bounds.
        """
        chains = self.taxonomy.ancestor_matrix(self.levels)
        pad_row = np.full((1, self.levels), self.taxonomy.pad_id, dtype=np.int64)
        self.node_chains = np.concatenate([chains, pad_row], axis=0)
        self.node_chains.flags.writeable = False
        self.item_chains = self.node_chains[self.taxonomy.items]

    @classmethod
    def from_arrays(
        cls,
        taxonomy: Taxonomy,
        user: np.ndarray,
        w: np.ndarray,
        bias: np.ndarray,
        w_next: Optional[np.ndarray] = None,
        levels: int = 1,
        init_scale: float = 0.1,
    ) -> "FactorSet":
        """Adopt pre-existing factor arrays **without copying**.

        This is how :mod:`repro.serving.sharding` reconstructs a factor
        set from ``multiprocessing.shared_memory`` views: the arrays are
        taken as-is (they may be read-only views over a shared buffer),
        only the ancestor-chain index machinery is rebuilt from
        *taxonomy*.  Shapes must match what :meth:`save`/:meth:`load`
        would produce for this taxonomy: ``w``/``w_next``/``bias`` carry
        ``taxonomy.n_nodes + 1`` rows (the last being the zero pad row).
        """
        expected_rows = taxonomy.n_nodes + 1
        if w.shape[0] != expected_rows:
            raise ValueError(
                f"w has {w.shape[0]} node rows but the taxonomy needs "
                f"{expected_rows}; wrong taxonomy?"
            )
        fs = cls.__new__(cls)
        fs.taxonomy = taxonomy
        fs.n_users = int(user.shape[0])
        fs.factors = int(user.shape[1])
        fs.levels = int(levels)
        fs.init_scale = float(init_scale)
        fs.user = user
        fs.w = w
        fs.bias = bias
        fs.w_next = w_next
        fs._build_chains()
        return fs

    # ------------------------------------------------------------------
    # Effective factors (Eq. 1)
    # ------------------------------------------------------------------
    def _family(self, kind: str) -> np.ndarray:
        check_in("kind", kind, (KIND_LONG, KIND_NEXT))
        if kind == KIND_LONG:
            return self.w
        if self.w_next is None:
            raise ValueError("this FactorSet was built without next-item factors")
        return self.w_next

    def effective_nodes(self, nodes: np.ndarray, kind: str = KIND_LONG) -> np.ndarray:
        """Effective factors of arbitrary node ids (any array shape).

        Output shape is ``nodes.shape + (factors,)``.
        """
        family = self._family(kind)
        nodes = np.asarray(nodes, dtype=np.int64)
        return family[self.node_chains[nodes]].sum(axis=-2)

    def effective_items(
        self, items: Optional[np.ndarray] = None, kind: str = KIND_LONG
    ) -> np.ndarray:
        """Effective factors of dense item indices (all items if ``None``)."""
        family = self._family(kind)
        if items is None:
            return family[self.item_chains].sum(axis=-2)
        items = np.asarray(items, dtype=np.int64)
        return family[self.item_chains[items]].sum(axis=-2)

    def bias_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Summed chain bias of arbitrary node ids (any array shape)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.bias[self.node_chains[nodes]].sum(axis=-1)

    def bias_of_items(self, items: Optional[np.ndarray] = None) -> np.ndarray:
        """Summed chain bias of dense item indices (all items if ``None``)."""
        if items is None:
            return self.bias[self.item_chains].sum(axis=-1)
        items = np.asarray(items, dtype=np.int64)
        return self.bias[self.item_chains[items]].sum(axis=-1)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def zero_pad_rows(self) -> None:
        """Re-pin the pad rows to zero after scatter updates."""
        self.w[-1] = 0.0
        self.bias[-1] = 0.0
        if self.w_next is not None:
            self.w_next[-1] = 0.0

    def squared_norm(self) -> float:
        """``‖Θ‖²`` — the regularization term of Eq. 5."""
        total = float(np.sum(self.user**2)) + float(np.sum(self.w**2))
        total += float(np.sum(self.bias**2))
        if self.w_next is not None:
            total += float(np.sum(self.w_next**2))
        return total

    def ensure_users(self, n_users: int, seed: RngLike = 0) -> None:
        """Grow the user matrix to at least *n_users* rows.

        New users get fresh Gaussian factors; existing rows are untouched.
        Supports incremental training when new users appear in a later log.
        """
        if n_users <= self.n_users:
            return
        rng = ensure_rng(seed)
        extra = rng.normal(
            0.0, self.init_scale, size=(n_users - self.n_users, self.factors)
        )
        self.user = np.concatenate([self.user, extra], axis=0)
        self.n_users = int(n_users)

    def expand(self, grown: Taxonomy, new_offset_scale: float = 0.0, seed: RngLike = 0) -> "FactorSet":
        """Carry trained factors over to a grown taxonomy.

        *grown* must extend this factor set's taxonomy without renumbering
        (see :func:`repro.taxonomy.extend.add_items`).  New nodes start
        with zero offsets and zero bias, so Eq. 1 scores a new item purely
        by its ancestors — the paper's cold-start prescription.  Pass a
        positive *new_offset_scale* to add Gaussian jitter instead.
        """
        old_n = self.taxonomy.n_nodes
        if grown.n_nodes < old_n or not np.array_equal(
            grown.parent[:old_n], self.taxonomy.parent
        ):
            raise ValueError(
                "grown taxonomy must extend the current one without "
                "renumbering existing nodes"
            )
        clone = FactorSet(
            n_users=self.n_users,
            taxonomy=grown,
            factors=self.factors,
            levels=self.levels,
            with_next=self.w_next is not None,
            init_scale=self.init_scale,
            seed=seed,
        )
        clone.user = self.user.copy()
        rng = ensure_rng(seed)

        def carry(old: np.ndarray, new: np.ndarray) -> None:
            new[:] = 0.0
            new[:old_n] = old[:old_n]
            if new_offset_scale > 0:
                new[old_n:-1] = rng.normal(
                    0.0, new_offset_scale, size=new[old_n:-1].shape
                )

        carry(self.w, clone.w)
        carry(self.bias, clone.bias)
        if self.w_next is not None:
            carry(self.w_next, clone.w_next)
        return clone

    def copy(self) -> "FactorSet":
        """Deep copy (used by tests and the threaded trainer)."""
        clone = FactorSet.__new__(FactorSet)
        clone.taxonomy = self.taxonomy
        clone.n_users = self.n_users
        clone.factors = self.factors
        clone.levels = self.levels
        clone.init_scale = self.init_scale
        clone.user = self.user.copy()
        clone.w = self.w.copy()
        clone.bias = self.bias.copy()
        clone.w_next = None if self.w_next is None else self.w_next.copy()
        clone.node_chains = self.node_chains
        clone.item_chains = self.item_chains
        return clone

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the factor matrices (taxonomy is stored separately)."""
        arrays = {
            "user": self.user,
            "w": self.w,
            "bias": self.bias,
            "levels": np.asarray([self.levels]),
            "init_scale": np.asarray([self.init_scale]),
        }
        if self.w_next is not None:
            arrays["w_next"] = self.w_next
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path, taxonomy: Taxonomy) -> "FactorSet":
        """Restore a factor set saved with :meth:`save`.

        The file must have been saved for a taxonomy of the same size;
        loading against a mismatched tree is rejected rather than silently
        mis-indexing factors.
        """
        data = np.load(path)
        expected_rows = taxonomy.n_nodes + 1
        if data["w"].shape[0] != expected_rows:
            raise ValueError(
                f"factor file has {data['w'].shape[0]} node rows but the "
                f"taxonomy needs {expected_rows}; wrong taxonomy?"
            )
        levels = int(data["levels"][0])
        loaded = cls(
            n_users=data["user"].shape[0],
            taxonomy=taxonomy,
            factors=data["user"].shape[1],
            levels=levels,
            with_next="w_next" in data,
            init_scale=float(data["init_scale"][0]),
            seed=0,
        )
        loaded.user = data["user"]
        loaded.w = data["w"]
        loaded.bias = data["bias"]
        if "w_next" in data:
            loaded.w_next = data["w_next"]
        return loaded

    def __repr__(self) -> str:
        next_shape = None if self.w_next is None else self.w_next.shape
        return (
            f"FactorSet(users={self.user.shape}, w={self.w.shape}, "
            f"w_next={next_shape}, levels={self.levels})"
        )
