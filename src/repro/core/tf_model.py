"""The public TF model class — the paper's primary contribution.

:class:`TaxonomyFactorModel` is the ``TF(U, B)`` of Sec. 7.2:

* ``U`` (``config.taxonomy_levels``) — taxonomy levels used by the additive
  factor model of Eq. 1 (``U = 1`` → plain latent factor model);
* ``B`` (``config.markov_order``) — previous transactions feeding the
  short-term Markov term of Eq. 3 (``B = 0`` → long-term interests only).

The configuration space subsumes the baselines of Sec. 7.2:
``TF(1, 0)`` ≡ BPR-MF, ``TF(1, 1)`` ≡ FPMC (see
:mod:`repro.core.mf_model` for named wrappers).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.affinity import context_items_weights, user_query_vector
from repro.core.factors import KIND_LONG, KIND_NEXT, FactorSet
from repro.core.topk import top_k, top_k_rows
from repro.core.sgd import EpochStats, SGDTrainer
from repro.data.transactions import TransactionLog
from repro.taxonomy.tree import Taxonomy
from repro.utils.config import TrainConfig

History = Sequence[np.ndarray]


class NotFittedError(RuntimeError):
    """Raised when inference is requested before :meth:`fit`."""


class TaxonomyFactorModel:
    """Taxonomy-aware latent factor model ``TF(U, B)``.

    Parameters
    ----------
    taxonomy:
        The item taxonomy; its leaves define the item universe.
    config:
        Training hyper-parameters.  ``config.taxonomy_levels`` and
        ``config.markov_order`` select the model variant.
    **overrides:
        Convenience keyword overrides applied on top of *config*
        (e.g. ``TaxonomyFactorModel(tax, factors=32, markov_order=1)``).

    Examples
    --------
    >>> from repro import generate_dataset, train_test_split
    >>> from repro.train import SerialTrainer
    >>> data = generate_dataset()
    >>> split = train_test_split(data.log)
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=16, epochs=5)
    >>> _ = SerialTrainer(model).train(split.train)
    >>> model.recommend(user=0, k=3).shape
    (3,)
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        config: Optional[TrainConfig] = None,
        **overrides,
    ):
        if config is None:
            config = TrainConfig()
        if overrides:
            config = dataclasses.replace(config, **overrides)
        self.taxonomy = taxonomy
        self.config = config
        self._factors: Optional[FactorSet] = None
        self._train_log: Optional[TransactionLog] = None
        self.history_: List[EpochStats] = []

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        log: TransactionLog,
        callback: Optional[Callable[[EpochStats, SGDTrainer], None]] = None,
    ) -> "TaxonomyFactorModel":
        """Train on *log* with BPR/SGD (Sec. 4).

        .. deprecated:: 1.3
            Thin shim over :class:`repro.train.SerialTrainer`, which it
            matches bit-for-bit for the same seed.  Prefer the trainer —
            it adds callbacks, learning-rate schedules, early stopping,
            and checkpointing, and swaps backends without code changes::

                from repro.train import SerialTrainer
                SerialTrainer(model).train(log)

        The log's user indices define the model's user space; its item
        universe must match the taxonomy.  The legacy *callback* receives
        ``(EpochStats, SGDTrainer)`` per epoch, as before.
        """
        import warnings

        from repro.train.callbacks import LambdaCallback
        from repro.train.serial import SerialTrainer

        warnings.warn(
            "model.fit(...) is deprecated; use "
            "repro.train.SerialTrainer(model).train(log) (identical "
            "factors for the same seed) or an ExperimentSpec via "
            "`python -m repro run` — see docs/migration.md for the "
            "full upgrade guide",
            DeprecationWarning,
            stacklevel=2,
        )
        trainer = SerialTrainer(self)
        callbacks = []
        if callback is not None:
            callbacks.append(
                LambdaCallback(
                    on_epoch_end=lambda _e, stats, t: callback(
                        stats.raw, t._sgd
                    )
                )
            )
        trainer.train(log, callbacks=callbacks)
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def factor_set(self) -> FactorSet:
        """The trained parameters (raises if not fitted)."""
        if self._factors is None:
            raise NotFittedError("call fit() before using the model")
        return self._factors

    @property
    def n_users(self) -> int:
        """Number of users the model was configured for."""
        return self.factor_set.n_users

    @property
    def n_items(self) -> int:
        """Number of items (taxonomy leaves) the model scores."""
        return self.taxonomy.n_items

    def _history_for(self, user: int, history: Optional[History]) -> History:
        if history is not None:
            return history
        if self._train_log is not None and user < self._train_log.n_users:
            return self._train_log.user_transactions(user)
        return []

    def query_vector(
        self, user: int, history: Optional[History] = None
    ) -> np.ndarray:
        """``v^U_u + ctx`` — the vector all candidates are scored against.

        ``history`` is the user's past baskets (defaults to their training
        transactions); only the last ``markov_order`` matter.
        """
        return user_query_vector(
            self.factor_set,
            user,
            history=self._history_for(user, history),
            order=self.config.markov_order,
            alpha=self.config.alpha,
        )

    def query_matrix(
        self,
        users: np.ndarray,
        histories: Optional[Sequence[History]] = None,
    ) -> np.ndarray:
        """Query vectors for a batch of users, shape ``(len(users), K)``.

        ``histories[k]``, when given, overrides user ``users[k]``'s history.
        """
        fs = self.factor_set
        users = np.asarray(users, dtype=np.int64)
        queries = fs.user[users].copy()
        if self.config.markov_order == 0:
            return queries
        for row, user in enumerate(users):
            history = None if histories is None else histories[row]
            history = self._history_for(int(user), history)
            items, weights = context_items_weights(
                history, self.config.markov_order, self.config.alpha
            )
            if items.size:
                eff = fs.effective_items(items, kind=KIND_NEXT)
                queries[row] += weights @ eff
        return queries

    def score_items(
        self,
        user: int,
        history: Optional[History] = None,
        items: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Affinity scores (Eq. 3) for *items* (default: every item)."""
        query = self.query_vector(user, history)
        fs = self.factor_set
        return fs.effective_items(items) @ query + fs.bias_of_items(items)

    def score_matrix(
        self,
        users: np.ndarray,
        histories: Optional[Sequence[History]] = None,
    ) -> np.ndarray:
        """Dense score matrix ``(len(users), n_items)`` — the naive inference
        path that cascaded inference (Sec. 5.1) accelerates."""
        queries = self.query_matrix(users, histories)
        fs = self.factor_set
        return queries @ fs.effective_items().T + fs.bias_of_items()[None, :]

    def score_nodes(
        self,
        user: int,
        nodes: np.ndarray,
        history: Optional[History] = None,
    ) -> np.ndarray:
        """Affinity of *user* to arbitrary taxonomy nodes.

        Interior nodes use their own effective factors (sum of offsets up
        the tree), enabling recommendation at any level (Sec. 5.1).
        """
        query = self.query_vector(user, history)
        fs = self.factor_set
        return fs.effective_nodes(nodes) @ query + fs.bias_of_nodes(nodes)

    def category_scores(
        self, user: int, level: int, history: Optional[History] = None
    ) -> np.ndarray:
        """Scores over all taxonomy nodes at depth *level* (structured
        ranking: Fig. 6c/d evaluate at the category level)."""
        nodes = self.taxonomy.nodes_at_level(level)
        return self.score_nodes(user, nodes, history)

    def recommend(
        self,
        user: int,
        k: int = 10,
        history: Optional[History] = None,
        exclude: Optional[np.ndarray] = None,
        exclude_purchased: bool = True,
    ) -> np.ndarray:
        """Top-*k* items for *user* by exact (non-cascaded) inference.

        Parameters
        ----------
        exclude:
            Explicit item indices to keep out of the ranking.
        exclude_purchased:
            Also exclude the user's training purchases (recommenders
            suggest *new* items, Sec. 7.1).
        """
        scores = self.score_items(user, history)
        banned: List[np.ndarray] = []
        if exclude is not None:
            banned.append(np.asarray(exclude, dtype=np.int64))
        if exclude_purchased and self._train_log is not None:
            if user < self._train_log.n_users:
                banned.append(self._train_log.user_items(user))
        if banned:
            scores = scores.copy()
            scores[np.concatenate(banned)] = -np.inf
        return top_k(scores, min(k, scores.size))

    def recommend_batch(
        self,
        users: np.ndarray,
        k: int = 10,
        histories: Optional[Sequence[History]] = None,
        exclude: Optional[Sequence[Optional[np.ndarray]]] = None,
        exclude_purchased: bool = True,
    ) -> np.ndarray:
        """Vectorized top-*k* for a batch of users — the serving fast path.

        Computes one dense score matrix (a single BLAS product) and one
        row-wise partition instead of ``len(users)`` per-user passes; rows
        match :meth:`recommend` for the same user.

        Parameters
        ----------
        users:
            Dense user indices, shape ``(n,)``.
        histories:
            Optional per-row history overrides (``histories[i]`` replaces
            user ``users[i]``'s training history).
        exclude:
            Optional per-row arrays of item indices to keep out of the
            ranking (``None`` entries skip a row).
        exclude_purchased:
            Also exclude each user's training purchases (Sec. 7.1).

        Returns
        -------
        ``(n, min(k, n_items))`` int64 array, best items first; rows with
        fewer than ``k`` rankable items are padded with ``-1``.
        """
        users = np.asarray(users, dtype=np.int64)
        scores = self.score_matrix(users, histories)
        if exclude_purchased and self._train_log is not None:
            for row, user in enumerate(users):
                if user < self._train_log.n_users:
                    bought = self._train_log.user_items(int(user))
                    if bought.size:
                        scores[row, bought] = -np.inf
        if exclude is not None:
            for row, banned in enumerate(exclude):
                if banned is not None and len(banned):
                    scores[row, np.asarray(banned, dtype=np.int64)] = -np.inf
        return top_k_rows(scores, k)

    def attach_log(self, log: TransactionLog) -> "TaxonomyFactorModel":
        """Attach *log* as the serving-time history source.

        A model restored from a :class:`~repro.serving.bundle.ModelBundle`
        carries no transaction log; attaching one restores Markov contexts
        and purchased-item exclusion for known users, exactly as after
        :meth:`fit`.
        """
        if log.n_items != self.taxonomy.n_items:
            raise ValueError(
                f"log item universe ({log.n_items}) does not match the "
                f"taxonomy ({self.taxonomy.n_items})"
            )
        self._train_log = log
        return self

    def partial_fit(
        self,
        log: Optional[TransactionLog] = None,
        epochs: int = 1,
        callback: Optional[Callable[[EpochStats, SGDTrainer], None]] = None,
    ) -> "TaxonomyFactorModel":
        """Continue training the current factors for more epochs.

        Parameters
        ----------
        log:
            New transactions (same item universe).  Defaults to the log the
            model was fitted on.  Logs covering *more* users grow the user
            factor matrix; existing users keep their learned factors.
        epochs:
            Additional epochs to run.

        This supports the production pattern the paper motivates: retrain
        incrementally as fresh purchase data streams in, without starting
        from scratch.
        """
        factor_set = self.factor_set  # raises NotFittedError when unfitted
        if log is None:
            log = self._train_log
        if log.n_items != self.taxonomy.n_items:
            raise ValueError(
                f"log item universe ({log.n_items}) does not match the "
                f"taxonomy ({self.taxonomy.n_items})"
            )
        factor_set.ensure_users(log.n_users, seed=self.config.seed)
        config = dataclasses.replace(self.config, epochs=epochs)
        trainer = SGDTrainer(factor_set, log, config)
        self.history_.extend(trainer.train(callback=callback))
        self._train_log = log
        return self

    def onboard_items(
        self,
        parents: Sequence[int],
        names: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Add newly released items under existing categories (Sec. 1).

        One new item is attached under each node of *parents*.  The new
        items inherit their categories' effective factors (their own
        offsets start at zero), so they are immediately recommendable —
        the paper's cold-start prescription.  Returns the new items' dense
        indices.

        Retraining afterwards requires a log whose item universe matches
        the grown taxonomy.
        """
        from repro.taxonomy.extend import add_items

        grown, new_items = add_items(self.taxonomy, parents, names)
        self._factors = self.factor_set.expand(grown)
        self.taxonomy = grown
        return new_items

    def replant_items(self, moves) -> None:
        """Re-seat items under better categories, scores unchanged.

        *moves* maps dense item indices to new parent nodes (see
        :meth:`repro.taxonomy.tree.Taxonomy.replant`).  Every effective
        factor is preserved by rewriting the moved leaves' own offsets
        (:func:`repro.taxonomy.learn.replant_items`), so recommendations
        are unaffected until further training exploits the new chains.
        The model's taxonomy advances one revision.
        """
        from repro.taxonomy.learn import replant_items

        replanted, shifted = replant_items(self.taxonomy, self.factor_set, moves)
        self.taxonomy = replanted
        self._factors = shifted

    def effective_item_factors(self) -> np.ndarray:
        """Effective item factors ``v^I`` (Eq. 1), shape ``(n_items, K)``."""
        return self.factor_set.effective_items()

    def effective_node_factors(self, nodes: np.ndarray) -> np.ndarray:
        """Effective factors for arbitrary node ids (Fig. 7e visualizes
        these for the upper taxonomy levels)."""
        return self.factor_set.effective_nodes(nodes)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        fitted = self._factors is not None
        return (
            f"TaxonomyFactorModel(U={self.config.taxonomy_levels}, "
            f"B={self.config.markov_order}, K={self.config.factors}, "
            f"fitted={fitted})"
        )
