"""The taxonomy-aware temporal affinity model (paper Sec. 3.2, Eq. 2-3).

The score of item ``j`` for user ``u`` at time ``t`` is

    s_t(j) = ⟨v^U_u, v^I_j⟩ + Σ_{n=1..N} α_n/|B_{t−n}| Σ_{ℓ∈B_{t−n}} ⟨v^{I→•}_ℓ, v^I_j⟩

with exponential decay ``α_n = α·e^{−n/N}``.  Because the second term is a
linear function of ``v^I_j``, it collapses into a single *context vector*
per ``(u, t)``:

    ctx_{u,t} = Σ_n α_n/|B_{t−n}| Σ_ℓ v^{I→•}_ℓ        so        s_t(j) = ⟨v^U_u + ctx_{u,t}, v^I_j⟩

:class:`ContextTable` precomputes, for every training transaction, which
previous items contribute and with what weight; the actual context vectors
are re-gathered from the live factor matrices each time (the factors move
during SGD).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.factors import KIND_NEXT, FactorSet
from repro.data.transactions import TransactionLog
from repro.utils.validation import check_non_negative, check_positive

#: Cap on how many previous items feed one context (most recent win).
DEFAULT_MAX_CONTEXT_ITEMS = 32


def decay_weights(order: int, alpha: float = 1.0) -> np.ndarray:
    """The paper's transaction-age weights ``α_n = α·e^{−n/N}``, n = 1..N."""
    check_non_negative("order", order)
    check_non_negative("alpha", alpha)
    if order == 0:
        return np.empty(0, dtype=np.float64)
    n = np.arange(1, order + 1, dtype=np.float64)
    return alpha * np.exp(-n / order)


def context_items_weights(
    history: Sequence[np.ndarray],
    order: int,
    alpha: float = 1.0,
    max_items: int = DEFAULT_MAX_CONTEXT_ITEMS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Previous items and their weights for a prediction after *history*.

    ``history`` is the user's ordered past baskets; the last ``order`` of
    them contribute.  Each item of basket ``B_{t−n}`` gets weight
    ``α_n / |B_{t−n}|``.  Returns ``(items, weights)`` 1-d arrays, truncated
    to the *most recent* ``max_items`` entries.
    """
    alphas = decay_weights(order, alpha)
    items: List[int] = []
    weights: List[float] = []
    used = min(order, len(history))
    for n in range(1, used + 1):
        basket = np.asarray(history[len(history) - n], dtype=np.int64)
        if basket.size == 0:
            continue
        share = alphas[n - 1] / basket.size
        items.extend(int(x) for x in basket)
        weights.extend(share for _ in range(basket.size))
        if len(items) >= max_items:
            break
    items_arr = np.asarray(items[:max_items], dtype=np.int64)
    weights_arr = np.asarray(weights[:max_items], dtype=np.float64)
    return items_arr, weights_arr


class ContextTable:
    """Per-(user, t) short-term context of a transaction log.

    Row ``r = offsets[u] + t`` describes the context active when user ``u``
    makes transaction ``t``: ``items[r]`` / ``weights[r]`` are the padded
    previous items and their Eq. 3 weights (pad entries have weight 0 and
    point at item 0, whose contribution the zero weight cancels).
    """

    def __init__(
        self,
        items: np.ndarray,
        weights: np.ndarray,
        offsets: np.ndarray,
        order: int,
        alpha: float,
    ):
        self.items = items
        self.weights = weights
        self.offsets = offsets
        self.order = order
        self.alpha = alpha

    @classmethod
    def build(
        cls,
        log: TransactionLog,
        order: int,
        alpha: float = 1.0,
        max_items: int = DEFAULT_MAX_CONTEXT_ITEMS,
    ) -> "ContextTable":
        """Precompute contexts for every transaction of *log*."""
        check_positive("order", order)
        check_positive("max_items", max_items)
        rows_items: List[np.ndarray] = []
        rows_weights: List[np.ndarray] = []
        offsets = np.zeros(log.n_users + 1, dtype=np.int64)
        width = 0
        for user in range(log.n_users):
            baskets = log.user_transactions(user)
            offsets[user + 1] = offsets[user] + len(baskets)
            for t in range(len(baskets)):
                items, weights = context_items_weights(
                    baskets[:t], order, alpha, max_items
                )
                rows_items.append(items)
                rows_weights.append(weights)
                width = max(width, items.size)
        width = max(width, 1)
        n_rows = len(rows_items)
        items = np.zeros((n_rows, width), dtype=np.int64)
        weights = np.zeros((n_rows, width), dtype=np.float64)
        for r, (row_i, row_w) in enumerate(zip(rows_items, rows_weights)):
            items[r, : row_i.size] = row_i
            weights[r, : row_w.size] = row_w
        return cls(items, weights, offsets, order, alpha)

    @property
    def n_rows(self) -> int:
        """Number of (user, transaction) context rows."""
        return self.items.shape[0]

    @property
    def width(self) -> int:
        """Maximum context items per row (shorter rows are zero-padded)."""
        return self.items.shape[1]

    def row(self, user: int, t: int) -> int:
        """Row index of user *user*'s transaction *t*."""
        return int(self.offsets[user] + t)

    def rows(self, users: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`row`."""
        return self.offsets[np.asarray(users, dtype=np.int64)] + np.asarray(
            ts, dtype=np.int64
        )

    def context_vectors(
        self, factor_set: FactorSet, rows: np.ndarray
    ) -> np.ndarray:
        """Context vectors ``ctx_{u,t}`` for the given table rows.

        Shape ``(len(rows), K)``.  Gathers the *current* next-item factors,
        so calling this during training reflects in-flight updates.
        """
        rows = np.asarray(rows, dtype=np.int64)
        prev_items = self.items[rows]  # (R, L)
        prev_weights = self.weights[rows]  # (R, L)
        eff = factor_set.effective_items(prev_items, kind=KIND_NEXT)  # (R, L, K)
        return np.einsum("rl,rlk->rk", prev_weights, eff)


def score_items(
    factor_set: FactorSet,
    user: int,
    history: Optional[Sequence[np.ndarray]] = None,
    order: int = 0,
    alpha: float = 1.0,
    items: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Affinity scores (Eq. 3) of one user for *items* (default: all).

    ``history`` is the user's past baskets; only the last ``order`` matter.
    """
    query = user_query_vector(factor_set, user, history, order, alpha)
    effective = factor_set.effective_items(items)
    return effective @ query + factor_set.bias_of_items(items)


def user_query_vector(
    factor_set: FactorSet,
    user: int,
    history: Optional[Sequence[np.ndarray]] = None,
    order: int = 0,
    alpha: float = 1.0,
) -> np.ndarray:
    """``v^U_u + ctx`` — the vector every candidate is scored against."""
    query = factor_set.user[user].copy()
    if order > 0 and history:
        items, weights = context_items_weights(history, order, alpha)
        if items.size:
            eff = factor_set.effective_items(items, kind=KIND_NEXT)
            query += weights @ eff
    return query
