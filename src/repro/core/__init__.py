"""Core models: the TF model, baselines, training, and cascaded inference."""

from repro.core.affinity import (
    ContextTable,
    context_items_weights,
    decay_weights,
    score_items,
    user_query_vector,
)
from repro.core.bpr import bpr_coefficient, bpr_pair_loss, log_sigmoid, sigmoid
from repro.core.cascade import (
    CascadedRecommender,
    CascadeResult,
    leaf_only_cascade,
    uniform_cascade,
)
from repro.core.explain import (
    ScoreExplanation,
    explain_recommendations,
    explain_score,
)
from repro.core.factors import KIND_LONG, KIND_NEXT, FactorSet
from repro.core.folding import (
    fold_in_user,
    recommend_for_history,
    score_for_vector,
)
from repro.core.mf_model import MFModel, bpr_mf_model, flat_taxonomy, fpmc_model
from repro.core.popularity import PopularityModel, RandomModel
from repro.core.sampling import TripleStore
from repro.core.sgd import EpochStats, SGDTrainer
from repro.core.sibling import SiblingSampler
from repro.core.targeting import (
    audience_for_category,
    category_affinities,
    category_share,
    diversified_recommend,
)
from repro.core.tf_model import NotFittedError, TaxonomyFactorModel

__all__ = [
    "TaxonomyFactorModel",
    "MFModel",
    "fpmc_model",
    "bpr_mf_model",
    "flat_taxonomy",
    "PopularityModel",
    "RandomModel",
    "NotFittedError",
    "FactorSet",
    "KIND_LONG",
    "KIND_NEXT",
    "SGDTrainer",
    "EpochStats",
    "TripleStore",
    "SiblingSampler",
    "ContextTable",
    "context_items_weights",
    "decay_weights",
    "score_items",
    "user_query_vector",
    "sigmoid",
    "log_sigmoid",
    "bpr_coefficient",
    "bpr_pair_loss",
    "CascadedRecommender",
    "CascadeResult",
    "uniform_cascade",
    "leaf_only_cascade",
    "ScoreExplanation",
    "explain_score",
    "explain_recommendations",
    "fold_in_user",
    "score_for_vector",
    "recommend_for_history",
    "audience_for_category",
    "category_affinities",
    "category_share",
    "diversified_recommend",
]
