"""Vectorized row-wise top-k selection shared by the batch inference paths.

Every ``recommend_batch`` implementation (TF/MF models, baselines, the
serving layer) funnels its score matrix through :func:`top_k_rows` so that
batched rankings are computed with one ``argpartition`` over the whole
matrix instead of a Python loop of per-user sorts, and so that all batch
APIs agree on the padding convention for rows with fewer than ``k``
rankable candidates.
"""

from __future__ import annotations

import numpy as np

#: Index used to pad rows that have fewer than ``k`` finite-scored items.
PAD_ITEM = -1


def top_k_rows(scores: np.ndarray, k: int, pad: int = PAD_ITEM) -> np.ndarray:
    """Row-wise descending top-``k`` indices of a 2-d score matrix.

    Parameters
    ----------
    scores:
        Shape ``(n_rows, n_candidates)``.  Candidates scored ``-inf`` (or
        any non-finite value) are treated as excluded.
    k:
        Ranking depth; the output width is ``min(k, n_candidates)``.
    pad:
        Filler for slots beyond a row's finite candidates.

    Returns
    -------
    ``(n_rows, min(k, n_candidates))`` int64 array.  Each row lists that
    row's best candidates in descending score order (stable within ties of
    the partitioned subset); excluded slots hold *pad*.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-d, got shape {scores.shape}")
    n_rows, n_candidates = scores.shape
    width = min(int(k), n_candidates)
    if width <= 0:
        return np.empty((n_rows, 0), dtype=np.int64)
    part = np.argpartition(-scores, width - 1, axis=1)[:, :width]
    rows = np.arange(n_rows)[:, None]
    order = np.argsort(-scores[rows, part], axis=1, kind="stable")
    top = part[rows, order].astype(np.int64, copy=False)
    top[~np.isfinite(scores[rows, top])] = pad
    return top
