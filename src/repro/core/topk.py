"""Vectorized row-wise top-k selection shared by the batch inference paths.

Every ``recommend_batch`` implementation (TF/MF models, baselines, the
serving layer) funnels its score matrix through :func:`top_k_rows` so that
batched rankings are computed with one ``argpartition`` over the whole
matrix instead of a Python loop of per-user sorts, and so that all batch
APIs agree on the padding convention for rows with fewer than ``k``
rankable candidates.

:func:`top_k` and :func:`top_k_pairs` are the 1-d companions for the
per-user ``recommend`` paths, the ranking metrics, and subset rankings
that carry explicit candidate ids (cascade frontiers, targeting's user
lists) — same order, trimmed instead of padded.

:func:`merge_top_k_pages` / :func:`merge_top_k_rows` are the distributed
counterparts: a k-way merge of per-shard (or per-block) top-k *pages*
(items + scores) into one global top-k per row, used by
:class:`repro.serving.sharding.ShardRouter` to combine the answers of
item-partitioned shard workers and by
:class:`repro.serving.index.SubtreeIndex` to fold block pages into a
running top-k during the pruned scan.

Enforcement
-----------
``REP002`` in :mod:`repro.analysis` mechanically forbids raw
``argsort``/``argpartition``/``sort`` on score arrays outside this
module — every ranking in the tree flows through these selectors.

Determinism contract
--------------------
All selectors in this module agree on one total order over candidates:
**descending score, then ascending item index**.  Ties at the k-th score
are therefore resolved identically whether a ranking is computed in one
pass (:func:`top_k_rows`), merged from shard pages
(:func:`merge_top_k_rows`), or assembled block-by-block by the pruned
retrieval index — so a single process, an item-partitioned fleet, and a
taxonomy-pruned scan can never disagree on tied scores.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Index used to pad rows that have fewer than ``k`` finite-scored items.
PAD_ITEM = -1


def top_k_rows(scores: np.ndarray, k: int, pad: int = PAD_ITEM) -> np.ndarray:
    """Row-wise descending top-``k`` indices of a 2-d score matrix.

    Parameters
    ----------
    scores:
        Shape ``(n_rows, n_candidates)``.  Candidates scored ``-inf`` (or
        any non-finite value) are treated as excluded.
    k:
        Ranking depth; the output width is ``min(k, n_candidates)``.
    pad:
        Filler for slots beyond a row's finite candidates.

    Returns
    -------
    ``(n_rows, min(k, n_candidates))`` int64 array.  Each row lists that
    row's best candidates in descending score order; ties are broken by
    ascending candidate index (including ties that straddle the k-th
    score, where the smallest-index candidates are selected), the same
    total order :func:`merge_top_k_rows` applies — so single-pass and
    merged rankings are identical even on tied scores.  Excluded slots
    hold *pad*.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-d, got shape {scores.shape}")
    n_rows, n_candidates = scores.shape
    width = min(int(k), n_candidates)
    if width <= 0:
        return np.empty((n_rows, 0), dtype=np.int64)
    part = np.argpartition(-scores, width - 1, axis=1)[:, :width]
    # Candidate indices ascending first, then a stable sort on descending
    # score: equal-scored candidates keep ascending-index order.
    part = np.sort(part, axis=1)
    rows = np.arange(n_rows)[:, None]
    selected = scores[rows, part]
    order = np.argsort(-selected, axis=1, kind="stable")
    top = part[rows, order].astype(np.int64, copy=False)

    if width < n_candidates:
        # The partition picks *some* width candidates with maximal scores,
        # but when the k-th score is tied it may have picked an arbitrary
        # subset of the tied candidates.  Detect affected rows (more
        # candidates tied at the boundary score than were selected) and
        # redo them with the deterministic selection: everything strictly
        # above the boundary, then the smallest-index tied candidates.
        boundary = np.min(
            np.where(np.isnan(selected), np.inf, selected), axis=1
        )
        selected_at = (selected == boundary[:, None]).sum(axis=1)
        total_at = (scores == boundary[:, None]).sum(axis=1)
        for row in np.flatnonzero(total_at > selected_at):
            row_scores = scores[row]
            above = np.flatnonzero(row_scores > boundary[row])
            tied = np.flatnonzero(row_scores == boundary[row])
            chosen = np.concatenate([above, tied[: width - above.size]])
            # flatnonzero yields ascending indices and the sort is stable,
            # so equal scores keep ascending-index order here too.
            top[row] = chosen[np.argsort(-row_scores[chosen], kind="stable")]

    top[~np.isfinite(scores[rows, top])] = pad
    return top


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Descending top-``k`` indices of a 1-d score vector.

    The single-row convenience over :func:`top_k_rows`, for the per-user
    ``recommend`` paths and the ranking metrics: same total order
    (score desc, index asc), same treatment of non-finite scores —
    except that instead of padding, excluded slots are trimmed, so the
    result holds at most ``min(k, #finite)`` real candidate indices.

    Examples
    --------
    >>> import numpy as np
    >>> top_k(np.array([0.1, 0.9, 0.5, 0.9, -np.inf]), 3)
    array([1, 3, 2])
    >>> top_k(np.array([-np.inf, -np.inf]), 2)
    array([], dtype=int64)
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-d, got shape {scores.shape}")
    row = top_k_rows(scores[None, :], k)[0]
    return row[row != PAD_ITEM]


def top_k_pairs(ids: np.ndarray, scores: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` of explicit ``(id, score)`` candidates, canonical order.

    For rankings over a *subset* of candidates carrying their own ids —
    the cascade's surviving frontier nodes, targeting's user lists —
    where ties must break on the **id** (ascending), not on the position
    in the candidate array, so the result is invariant to the order the
    candidates were gathered in.  Non-finite scores are excluded and the
    result trimmed, as in :func:`top_k`.

    Examples
    --------
    >>> import numpy as np
    >>> top_k_pairs(np.array([7, 3, 9]), np.array([1.0, 2.0, 2.0]), 2)
    array([3, 9])
    """
    ids = np.asarray(ids, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if ids.shape != scores.shape or ids.ndim != 1:
        raise ValueError(
            f"ids {ids.shape} and scores {scores.shape} must be matching 1-d"
        )
    merged, _ = merge_top_k_pages([ids[None, :]], [scores[None, :]], k)
    row = merged[0]
    return row[row != PAD_ITEM]


def merge_top_k_pages(
    item_pages: "list[np.ndarray]",
    score_pages: "list[np.ndarray]",
    k: int,
    pad: int = PAD_ITEM,
) -> Tuple[np.ndarray, np.ndarray]:
    """K-way merge of top-k pages, returning surviving items *and* scores.

    The score-carrying variant of :func:`merge_top_k_rows`, for callers
    that keep merging incrementally — the pruned retrieval index folds
    each scanned block's page into its running top-k with this, and the
    running page's scores feed the next early-termination check.

    Parameters
    ----------
    item_pages:
        One ``(n_rows, w_s)`` int64 array per source; *pad* entries mark
        slots a source could not fill and never survive the merge.
    score_pages:
        Matching ``(n_rows, w_s)`` float arrays of the items' scores.
    k:
        Global ranking depth; the output width is ``min(k, sum_s w_s)``.
    pad:
        Filler for rows with fewer than ``k`` finite-scored candidates.

    Returns
    -------
    ``(items, scores)`` of shape ``(n_rows, min(k, total_width))``: the
    best candidates per row in (score desc, item asc) order, with *pad* /
    ``-inf`` in slots beyond a row's finite candidates.  Item indices
    must be disjoint across pages within a row (true for disjoint item
    partitions and disjoint scan blocks); duplicates would be ranked
    twice.
    """
    if not item_pages or len(item_pages) != len(score_pages):
        raise ValueError("need one score page per item page (at least one)")
    items = np.concatenate(
        [np.asarray(page, dtype=np.int64) for page in item_pages], axis=1
    )
    scores = np.concatenate(
        [np.asarray(page, dtype=np.float64) for page in score_pages], axis=1
    )
    if items.shape != scores.shape:
        raise ValueError(
            f"item pages {items.shape} and score pages {scores.shape} disagree"
        )
    n_rows, total = items.shape
    width = min(int(k), total)
    if width <= 0:
        return (
            np.empty((n_rows, 0), dtype=np.int64),
            np.empty((n_rows, 0), dtype=np.float64),
        )
    scores = np.where(items == pad, -np.inf, scores)
    rows = np.arange(n_rows)[:, None]
    # Secondary key first (item ascending), then a stable primary sort on
    # descending score: equal-scored candidates keep ascending-item order.
    by_item = np.argsort(items, axis=1, kind="stable")
    by_score = np.argsort(-scores[rows, by_item], axis=1, kind="stable")
    order = by_item[rows, by_score][:, :width]
    top = items[rows, order]
    top_scores = scores[rows, order]
    excluded = ~np.isfinite(top_scores)
    top[excluded] = pad
    top_scores[excluded] = -np.inf
    return top, top_scores


def merge_top_k_rows(
    item_pages: "list[np.ndarray]",
    score_pages: "list[np.ndarray]",
    k: int,
    pad: int = PAD_ITEM,
) -> np.ndarray:
    """K-way merge of per-shard top-k pages into one global top-k per row.

    Each shard of an item-partitioned fleet returns a *page* for every
    request row: its locally best item indices plus their scores.  This
    merges those pages the way a heap-based k-way list merge would —
    candidates are pooled per row and the globally best ``k`` survive —
    but vectorized over all rows at once.  See :func:`merge_top_k_pages`
    for the parameter contract; this variant drops the merged scores.

    Returns
    -------
    ``(n_rows, min(k, total_width))`` int64 array, best items first.
    Ties are broken by ascending item index (the same order
    :func:`top_k_rows` uses), so the result is invariant to the number of
    shards the candidates arrived from.

    Examples
    --------
    >>> import numpy as np
    >>> left = (np.array([[4, 2]]), np.array([[9.0, 5.0]]))
    >>> right = (np.array([[7, 1]]), np.array([[7.0, -np.inf]]))
    >>> merge_top_k_rows([left[0], right[0]], [left[1], right[1]], k=3)
    array([[4, 7, 2]])
    """
    return merge_top_k_pages(item_pages, score_pages, k, pad=pad)[0]
