"""Sampling machinery for BPR training (paper Sec. 4.1).

Each SGD step consumes a 4-tuple ``(u, t, i, j)``: user ``u``'s transaction
``t`` contains positive item ``i``; negative item ``j`` is sampled uniformly
from the items *not* in that transaction.  An epoch is one shuffled pass
over all purchase events.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.transactions import TransactionLog
from repro.utils.rng import RngLike, ensure_rng


class TripleStore:
    """All ``(u, t, i)`` purchase events of a log plus basket membership.

    ``row_of(u, t)`` maps a transaction to a dense transaction index shared
    with :class:`~repro.core.affinity.ContextTable`.

    Parameters
    ----------
    log:
        The training transactions.
    negative_pool:
        Items negatives are drawn from.  ``None`` (default) means the whole
        universe; pass ``log.purchased_items()`` to restrict sampling to
        items with at least one purchase.
    """

    def __init__(self, log: TransactionLog, negative_pool=None):
        self.log = log
        self.triples = log.purchase_triples()  # (P, 3) rows (u, t, i)
        self.offsets = np.zeros(log.n_users + 1, dtype=np.int64)
        baskets: List[frozenset] = []
        for user in range(log.n_users):
            txns = log.user_transactions(user)
            self.offsets[user + 1] = self.offsets[user] + len(txns)
            baskets.extend(frozenset(int(x) for x in b) for b in txns)
        self.baskets = baskets
        self.transaction_rows = self.offsets[self.triples[:, 0]] + self.triples[:, 1]
        if negative_pool is not None:
            negative_pool = np.asarray(negative_pool, dtype=np.int64)
            if negative_pool.size == 0:
                raise ValueError("negative_pool must not be empty")
        self.negative_pool = negative_pool

    @property
    def n_triples(self) -> int:
        """Number of (user, transaction, item) training triples."""
        return self.triples.shape[0]

    def row_of(self, user: int, t: int) -> int:
        """Dense transaction index of user *user*'s transaction *t*."""
        return int(self.offsets[user] + t)

    def epoch_order(self, rng: RngLike = None, shuffle: bool = True) -> np.ndarray:
        """Indices of one epoch's visitation order."""
        order = np.arange(self.n_triples)
        if shuffle:
            ensure_rng(rng).shuffle(order)
        return order

    def sample_negatives(
        self,
        indices: np.ndarray,
        rng: RngLike = None,
        attempts: int = 8,
    ) -> np.ndarray:
        """Negative items ``j ∉ B_t`` for the triples at *indices*.

        Uniform proposals with up to *attempts* rejection rounds; a proposal
        still colliding after that is replaced by scanning from a random
        offset (guaranteed to terminate since baskets never cover the whole
        item universe in practice; if one does, the collision is kept).
        """
        rng = ensure_rng(rng)
        pool = self.negative_pool
        pool_size = self.log.n_items if pool is None else pool.size

        def draw(count: int) -> np.ndarray:
            raw = rng.integers(0, pool_size, size=count)
            return raw if pool is None else pool[raw]

        rows = self.transaction_rows[indices]
        negatives = draw(indices.size)
        for _ in range(attempts):
            bad = [
                k
                for k in range(indices.size)
                if int(negatives[k]) in self.baskets[rows[k]]
            ]
            if not bad:
                return negatives
            bad = np.asarray(bad, dtype=np.int64)
            negatives[bad] = draw(bad.size)
        for k in range(indices.size):
            basket = self.baskets[rows[k]]
            if int(negatives[k]) not in basket:
                continue
            start = int(rng.integers(0, pool_size))
            for step in range(pool_size):
                position = (start + step) % pool_size
                candidate = position if pool is None else int(pool[position])
                if candidate not in basket:
                    negatives[k] = candidate
                    break
        return negatives
