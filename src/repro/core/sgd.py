"""Vectorized stochastic gradient descent for BPR training (Sec. 4).

The paper trains with per-sample SGD in C++.  In Python we process
minibatches of 4-tuples ``(u, t, i, j)`` with numpy scatter-adds, which
keeps the same stochastic-update semantics (every purchase event is one
training example per epoch; negatives are resampled every epoch) at
vectorized speed.

Gradients implement Eq. 6 with the sign of the short-term term corrected
(see DESIGN.md): writing ``q = v^U_u + ctx_{u,t}`` and
``Δ = v^I_i − v^I_j``, the step for ``c = 1 − σ(⟨q, Δ⟩)`` is

    v^U_u      += ε (c·Δ − λ v^U_u)
    w^I_{p^m(i)} += ε (c·q − λ w^I_{p^m(i)})          for every chain level m
    w^I_{p^m(j)} += ε (−c·q − λ w^I_{p^m(j)})
    w^{I→•}_{p^m(ℓ)} += ε (c·a_ℓ·Δ − λ w^{I→•}_{p^m(ℓ)})   for prev items ℓ,

where ``a_ℓ`` is the Eq. 3 weight of previous item ``ℓ``.  Because
``∂v^I_i/∂w^I_{p^m(i)} = 1`` (Eq. 1), every level of a chain receives the
same data gradient — which is why the chain updates vectorize into one
scatter-add over the padded chain matrices.

Sibling-based training (Sec. 4.2) reuses the same batch update with
internal-node chains substituted for item chains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.affinity import ContextTable
from repro.core.bpr import log_sigmoid, sigmoid
from repro.core.factors import FactorSet
from repro.core.sampling import TripleStore
from repro.core.sibling import SiblingSampler
from repro.data.transactions import TransactionLog
from repro.utils.config import TrainConfig
from repro.utils.rng import ensure_rng


def bpr_user_step(
    vu: np.ndarray,
    delta: np.ndarray,
    c: np.ndarray,
    learning_rate: float,
    reg: float,
) -> np.ndarray:
    """The Eq. 6 user-factor increment ``ε (c·Δ − λ v^U_u)`` for a batch.

    ``vu`` are the current user rows ``(M, K)``, ``delta`` the positive
    minus negative effective item factors ``(M, K)``, and ``c`` the BPR
    residual ``1 − σ(diff)`` per pair ``(M,)``.  Shared by the offline
    :class:`SGDTrainer` and the streaming
    :class:`~repro.streaming.updater.OnlineUpdater`, which applies exactly
    this step with the item/taxonomy factors frozen.
    """
    return learning_rate * (c[:, None] * delta - reg * vu)


@dataclass
class EpochStats:
    """Diagnostics of one training epoch."""

    epoch: int
    loss: float
    sibling_loss: float
    n_examples: int
    n_sibling_examples: int
    seconds: float

    def __str__(self) -> str:
        return (
            f"epoch {self.epoch}: loss={self.loss:.4f} "
            f"sibling_loss={self.sibling_loss:.4f} "
            f"examples={self.n_examples}+{self.n_sibling_examples} "
            f"({self.seconds:.2f}s)"
        )


class SGDTrainer:
    """Minibatch BPR/SGD over a :class:`FactorSet`.

    Parameters
    ----------
    factor_set:
        The parameters to train (mutated in place).
    log:
        Training transactions.
    config:
        Hyper-parameters; ``config.markov_order`` and
        ``config.sibling_ratio`` toggle the temporal term and
        sibling-based training.
    """

    def __init__(
        self,
        factor_set: FactorSet,
        log: TransactionLog,
        config: TrainConfig,
    ):
        if log.n_items != factor_set.taxonomy.n_items:
            raise ValueError(
                f"log has {log.n_items} items but the taxonomy has "
                f"{factor_set.taxonomy.n_items}"
            )
        if log.n_users > factor_set.n_users:
            raise ValueError(
                f"log has {log.n_users} users but the factor set only "
                f"{factor_set.n_users}"
            )
        if config.markov_order > 0 and factor_set.w_next is None:
            raise ValueError(
                "markov_order > 0 requires a FactorSet built with next-item "
                "factors (with_next=True)"
            )
        self.factors = factor_set
        self.log = log
        self.config = config
        #: Step size used by the next batch; mutable so a schedule (see
        #: :class:`repro.train.callbacks.LRSchedule`) can anneal it
        #: between epochs without rebuilding the trainer.
        self.learning_rate = float(config.learning_rate)
        self.rng = ensure_rng(config.seed)
        negative_pool = None
        if config.negative_pool == "purchased":
            negative_pool = log.purchased_items()
        self.store = TripleStore(log, negative_pool=negative_pool)
        self.context: Optional[ContextTable] = None
        if config.markov_order > 0:
            self.context = ContextTable.build(
                log, order=config.markov_order, alpha=config.alpha
            )
        self.sibling: Optional[SiblingSampler] = None
        if config.sibling_ratio > 0:
            self.sibling = SiblingSampler(
                factor_set.taxonomy, factor_set.levels
            )
        self._basket_nodes: dict = {}
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train(
        self,
        epochs: Optional[int] = None,
        callback: Optional[Callable[[EpochStats, "SGDTrainer"], None]] = None,
    ) -> List[EpochStats]:
        """Run *epochs* epochs (defaults to ``config.epochs``)."""
        if epochs is None:
            epochs = self.config.epochs
        for _ in range(epochs):
            stats = self._run_epoch(len(self.history))
            self.history.append(stats)
            if callback is not None:
                callback(stats, self)
        return self.history

    def _run_epoch(self, epoch: int) -> EpochStats:
        config = self.config
        started = time.perf_counter()
        order = self.store.epoch_order(self.rng, shuffle=config.shuffle)
        loss_sum = 0.0
        loss_count = 0
        sibling_sum = 0.0
        sibling_count = 0
        triples = self.store.triples
        item_chains = self.factors.item_chains
        # Within one scatter-add batch, gradients are computed at the
        # batch-start parameters; hot taxonomy rows touched by many samples
        # would otherwise take one huge stale step on tiny datasets.  Keep
        # at least ~8 batches per epoch so behaviour stays close to the
        # paper's per-sample SGD (no effect once the data outgrows
        # 8 * batch_size samples).
        batch_size = min(config.batch_size, max(1, -(-order.size // 8)))

        for start in range(0, order.size, batch_size):
            idx = order[start : start + batch_size]
            users = triples[idx, 0]
            positives = triples[idx, 2]
            negatives = self.store.sample_negatives(
                idx, self.rng, attempts=config.negative_attempts
            )
            rows = (
                self.store.transaction_rows[idx]
                if self.context is not None
                else None
            )
            batch_loss, batch_n = self._apply_batch(
                users, rows, item_chains[positives], item_chains[negatives]
            )
            loss_sum += batch_loss
            loss_count += batch_n

            if self.sibling is not None and config.sibling_ratio > 0:
                picked = self.rng.random(idx.size) < config.sibling_ratio
                if picked.any():
                    picked_rows = self.store.transaction_rows[idx][picked]
                    src, pos_nodes, neg_nodes = self.sibling.expand_batch(
                        item_chains[positives[picked]],
                        self.rng,
                        excluded_nodes=[
                            self._basket_node_set(int(r)) for r in picked_rows
                        ],
                        min_level=config.sibling_min_level,
                    )
                    if src.size:
                        sib_users = users[picked][src]
                        sib_rows = None
                        if rows is not None:
                            sib_rows = rows[picked][src]
                        sib_loss, sib_n = self._apply_batch(
                            sib_users,
                            sib_rows,
                            self.sibling.chains_of(pos_nodes),
                            self.sibling.chains_of(neg_nodes),
                        )
                        sibling_sum += sib_loss
                        sibling_count += sib_n

        return EpochStats(
            epoch=epoch,
            loss=loss_sum / max(loss_count, 1),
            sibling_loss=sibling_sum / max(sibling_count, 1),
            n_examples=loss_count,
            n_sibling_examples=sibling_count,
            seconds=time.perf_counter() - started,
        )

    def _basket_node_set(self, row: int) -> frozenset:
        """Ancestor nodes of every item in transaction *row* (cached).

        Sibling negatives must avoid these: preferring a purchased item
        over a sibling *the same transaction also touches* would contradict
        the data (the node-level analogue of BPR's ``j ∉ B_t``).
        """
        cached = self._basket_nodes.get(row)
        if cached is not None:
            return cached
        items = np.fromiter(self.store.baskets[row], dtype=np.int64)
        chains = self.factors.item_chains[items]
        pad = self.factors.taxonomy.pad_id
        nodes = frozenset(int(x) for x in chains.ravel() if x != pad)
        self._basket_nodes[row] = nodes
        return nodes

    # ------------------------------------------------------------------
    # The batch update (shared by item-level and sibling examples)
    # ------------------------------------------------------------------
    def _apply_batch(
        self,
        users: np.ndarray,
        ctx_rows: Optional[np.ndarray],
        pos_chains: np.ndarray,
        neg_chains: np.ndarray,
    ) -> tuple:
        """One BPR gradient-ascent step over a batch of pairs.

        Returns ``(summed negative log-likelihood, batch size)``.
        """
        fs = self.factors
        lr = self.learning_rate
        reg = self.config.reg
        k = fs.factors

        vu = fs.user[users]  # (M, K)
        use_context = self.context is not None and ctx_rows is not None
        if use_context:
            prev_items = self.context.items[ctx_rows]  # (M, L)
            prev_weights = self.context.weights[ctx_rows]  # (M, L)
            prev_chains = fs.item_chains[prev_items]  # (M, L, U)
            w_prev = fs.w_next[prev_chains]  # (M, L, U, K)
            prev_eff = w_prev.sum(axis=2)  # (M, L, K)
            query = vu + np.einsum("ml,mlk->mk", prev_weights, prev_eff)
        else:
            query = vu

        w_pos = fs.w[pos_chains]  # (M, U, K)
        w_neg = fs.w[neg_chains]
        delta = w_pos.sum(axis=1) - w_neg.sum(axis=1)  # (M, K)
        diff = np.einsum("mk,mk->m", query, delta)
        if self.config.use_bias:
            b_pos = fs.bias[pos_chains]  # (M, U)
            b_neg = fs.bias[neg_chains]
            diff = diff + b_pos.sum(axis=1) - b_neg.sum(axis=1)
        c = 1.0 - sigmoid(diff)  # (M,)

        # User factors.
        np.add.at(fs.user, users, bpr_user_step(vu, delta, c, lr, reg))

        # Long-term chains: every level receives the same data gradient.
        data_grad = c[:, None] * query  # (M, K)
        pos_update = lr * (data_grad[:, None, :] - reg * w_pos)
        np.add.at(fs.w, pos_chains.reshape(-1), pos_update.reshape(-1, k))
        neg_update = lr * (-data_grad[:, None, :] - reg * w_neg)
        np.add.at(fs.w, neg_chains.reshape(-1), neg_update.reshape(-1, k))

        # Popularity biases: ∂diff/∂b = +1 on the positive chain, −1 on the
        # negative chain, at every level.
        if self.config.use_bias:
            pos_bias_update = lr * (c[:, None] - reg * b_pos)
            np.add.at(fs.bias, pos_chains.reshape(-1), pos_bias_update.reshape(-1))
            neg_bias_update = lr * (-c[:, None] - reg * b_neg)
            np.add.at(fs.bias, neg_chains.reshape(-1), neg_bias_update.reshape(-1))

        # Next-item chains of the previous transactions' items.
        if use_context:
            coeff = c[:, None] * prev_weights  # (M, L)
            real = (prev_weights != 0.0).astype(np.float64)  # pad kill-switch
            value = (
                coeff[:, :, None, None] * delta[:, None, None, :]
                - reg * w_prev
            )
            value *= real[:, :, None, None]
            np.add.at(
                fs.w_next,
                prev_chains.reshape(-1),
                (lr * value).reshape(-1, k),
            )

        fs.zero_pad_rows()
        return float(-log_sigmoid(diff).sum()), int(diff.size)
