"""Category targeting and diversified ranking (paper Sec. 1).

Two capabilities the paper calls out as practical benefits of taxonomy-
aware models, made operational:

* "using taxonomies allows us to target users by product categories,
  which is commonly required in advertising campaigns" —
  :func:`audience_for_category` ranks *users* by their affinity to a
  category node (audience building for a campaign);
* "and reduce duplication of items of similar type" —
  :func:`diversified_recommend` caps how many items of the same category
  may appear in one recommendation list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import top_k, top_k_pairs
from repro.utils.validation import check_positive


def category_affinities(
    model: TaxonomyFactorModel,
    node: int,
    users: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Affinity of each user to taxonomy node *node*.

    Uses the node's effective factor and bias (the structured-ranking
    machinery of Sec. 5.1), so it works for any level: a top category, a
    leaf category, or a single item.
    """
    taxonomy = model.taxonomy
    if not 0 <= node < taxonomy.n_nodes:
        raise ValueError(f"node {node} does not exist")
    fs = model.factor_set
    if users is None:
        users = np.arange(model.n_users)
    users = np.asarray(users, dtype=np.int64)
    queries = model.query_matrix(users)
    effective = fs.effective_nodes(np.asarray([node]))[0]
    return queries @ effective + fs.bias_of_nodes(np.asarray([node]))[0]


def audience_for_category(
    model: TaxonomyFactorModel,
    node: int,
    k: int = 100,
    users: Optional[np.ndarray] = None,
    exclude_buyers: bool = False,
) -> np.ndarray:
    """The *k* users most drawn to the subtree of *node* (campaign audience).

    Parameters
    ----------
    exclude_buyers:
        Drop users who already bought inside the subtree (prospecting
        rather than retargeting).
    """
    check_positive("k", k)
    if users is None:
        users = np.arange(model.n_users)
    users = np.asarray(users, dtype=np.int64)
    scores = category_affinities(model, node, users)
    if exclude_buyers and model._train_log is not None:
        subtree = set(model.taxonomy.subtree_items(node).tolist())
        keep = np.asarray(
            [
                not (set(model._train_log.user_items(int(u)).tolist()) & subtree)
                for u in users
            ]
        )
        users = users[keep]
        scores = scores[keep]
    k = min(k, users.size)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    # Canonical subset ranking: ties break on the user id itself, not on
    # the position in the (caller-ordered) candidate array.
    return top_k_pairs(users, scores, k)


def diversified_recommend(
    model: TaxonomyFactorModel,
    user: int,
    k: int = 10,
    max_per_category: int = 2,
    category_level: Optional[int] = None,
    history: Optional[Sequence[np.ndarray]] = None,
    exclude_purchased: bool = True,
) -> np.ndarray:
    """Top-*k* items with at most *max_per_category* per category.

    Greedy re-ranking of the exact scores: walk items best-first and skip
    any whose category quota is exhausted — the paper's "reduce duplication
    of items of similar type".  ``category_level`` defaults to the lowest
    internal level (an item's direct parent).
    """
    check_positive("k", k)
    check_positive("max_per_category", max_per_category)
    taxonomy = model.taxonomy
    scores = model.score_items(user, history)
    if exclude_purchased and model._train_log is not None:
        if user < model._train_log.n_users:
            scores = scores.copy()
            scores[model._train_log.user_items(user)] = -np.inf

    if category_level is None:
        categories = taxonomy.parent[taxonomy.items]
    else:
        categories = taxonomy.item_category(
            np.arange(taxonomy.n_items), category_level
        )

    order = top_k(scores, scores.size)
    chosen: List[int] = []
    used: dict = {}
    for item in order:
        category = int(categories[item])
        if used.get(category, 0) >= max_per_category:
            continue
        used[category] = used.get(category, 0) + 1
        chosen.append(int(item))
        if len(chosen) == k:
            break
    return np.asarray(chosen, dtype=np.int64)


def category_share(
    taxonomy, items: Sequence[int], level: int = 1
) -> dict:
    """Distribution of *items* over the categories at *level* (diagnostic)."""
    items = np.asarray(list(items), dtype=np.int64)
    if items.size == 0:
        return {}
    categories = taxonomy.item_category(items, level)
    share: dict = {}
    for category in categories:
        share[int(category)] = share.get(int(category), 0) + 1
    return {c: n / items.size for c, n in share.items()}
