"""Baseline models from Sec. 7.2, expressed as TF configurations.

The paper's implementation "is generic, i.e., we can simulate a wide
variety of previously proposed models":

* ``MF(0)`` — BPR-trained latent factor model (``TF(1, 0)``),
* ``MF(1)`` — FPMC, factorized personalized Markov chains of Rendle et al.
  (``TF(1, 1)``), the state of the art the paper compares against,
* ``MF(B)`` — higher-order variants.

:class:`MFModel` pins ``taxonomy_levels = 1`` so only the item-level offset
is ever used: with a single chain entry, the effective item factor *is* the
item's own factor and the taxonomy plays no role, exactly like classic
matrix factorization.  A flat single-level taxonomy built by
:func:`flat_taxonomy` gives the same results without any tree at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.tf_model import TaxonomyFactorModel
from repro.taxonomy.tree import Taxonomy
from repro.utils.config import TrainConfig
from repro.utils.validation import check_positive


def flat_taxonomy(n_items: int) -> Taxonomy:
    """A trivial root-plus-items taxonomy for taxonomy-free baselines."""
    check_positive("n_items", n_items)
    parent = np.zeros(n_items + 1, dtype=np.int64)
    parent[0] = -1
    names = ["<root>"] + [f"item-{i}" for i in range(n_items)]
    return Taxonomy(parent, names=names)


class MFModel(TaxonomyFactorModel):
    """The paper's ``MF(B)`` baseline: BPR matrix factorization with an
    optional order-``B`` Markov term and no taxonomy.

    Parameters
    ----------
    taxonomy:
        Only used to define the item universe; pass the same taxonomy as
        the TF model for apples-to-apples comparisons, or a
        :func:`flat_taxonomy`.
    markov_order:
        ``B``; ``0`` → classic BPR-MF, ``1`` → FPMC.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        config: Optional[TrainConfig] = None,
        **overrides,
    ):
        overrides["taxonomy_levels"] = 1
        super().__init__(taxonomy, config, **overrides)

    @classmethod
    def from_n_items(
        cls, n_items: int, config: Optional[TrainConfig] = None, **overrides
    ) -> "MFModel":
        """Build an MF model without any real taxonomy."""
        return cls(flat_taxonomy(n_items), config, **overrides)

    def __repr__(self) -> str:
        fitted = self._factors is not None
        return (
            f"MFModel(B={self.config.markov_order}, "
            f"K={self.config.factors}, fitted={fitted})"
        )


def fpmc_model(
    taxonomy: Taxonomy, config: Optional[TrainConfig] = None, **overrides
) -> MFModel:
    """FPMC (Rendle et al., WWW 2010) ≡ ``MF(1)`` ≡ ``TF(1, 1)``."""
    overrides.setdefault("markov_order", 1)
    return MFModel(taxonomy, config, **overrides)


def bpr_mf_model(
    taxonomy: Taxonomy, config: Optional[TrainConfig] = None, **overrides
) -> MFModel:
    """Classic BPR matrix factorization ≡ ``MF(0)`` ≡ ``TF(1, 0)``."""
    overrides["markov_order"] = 0
    return MFModel(taxonomy, config, **overrides)
