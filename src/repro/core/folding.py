"""Folding in new users without retraining.

The paper handles new *items* through the taxonomy; the mirror-image
production problem is a new *user* who shows up with a handful of
purchases after the model was trained.  Full retraining per user is not an
option in serving, so :func:`fold_in_user` estimates a user vector by
running the same BPR/SGD updates restricted to that one vector — every
item/taxonomy factor stays frozen.

This is the standard fold-in technique for factor models, expressed with
this library's objective: maximize ``Σ ln σ(s(i) − s(j)) − λ‖v^U‖²`` over
the new user's purchases ``i`` with sampled negatives ``j``, where only
``v^U`` is free.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.bpr import sigmoid
from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import top_k
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def fold_in_user(
    model: TaxonomyFactorModel,
    history: Sequence[np.ndarray],
    steps: int = 200,
    learning_rate: float = 0.05,
    reg: Optional[float] = None,
    seed: RngLike = 0,
) -> np.ndarray:
    """Estimate a factor vector for an unseen user from *history*.

    Parameters
    ----------
    model:
        A fitted model; its item factors are frozen.
    history:
        The new user's baskets (ordered; also used as the Markov context
        when the model has one).
    steps:
        SGD steps over (positive, sampled negative) pairs.
    reg:
        L2 strength; defaults to the model's training ``reg``.

    Returns
    -------
    The estimated user vector (shape ``(factors,)``).  Score items for the
    new user with ``model.score_for_vector(vector, history)``.
    """
    check_positive("steps", steps)
    fs = model.factor_set
    config = model.config
    if reg is None:
        reg = config.reg
    rng = ensure_rng(seed)
    positives = np.unique(
        np.concatenate([np.asarray(b, dtype=np.int64) for b in history])
        if history
        else np.empty(0, dtype=np.int64)
    )
    if positives.size == 0:
        return np.zeros(fs.factors)

    # Context from the user's own history (frozen during fold-in).
    context = np.zeros(fs.factors)
    if config.markov_order > 0:
        from repro.core.affinity import context_items_weights
        from repro.core.factors import KIND_NEXT

        items, weights = context_items_weights(
            history, config.markov_order, config.alpha
        )
        if items.size:
            context = weights @ fs.effective_items(items, kind=KIND_NEXT)

    effective = fs.effective_items()
    bias = fs.bias_of_items()
    positive_set = set(int(p) for p in positives)
    vector = rng.normal(0.0, config.init_scale, size=fs.factors)
    n_items = fs.taxonomy.n_items
    for _ in range(steps):
        i = int(rng.choice(positives))
        j = int(rng.integers(0, n_items))
        while j in positive_set:
            j = int(rng.integers(0, n_items))
        delta = effective[i] - effective[j]
        diff = float((vector + context) @ delta + bias[i] - bias[j])
        c = float(1.0 - sigmoid(np.asarray([diff]))[0])
        vector += learning_rate * (c * delta - reg * vector)
    return vector


def fold_in_users(
    model: TaxonomyFactorModel,
    histories: Sequence[Sequence[np.ndarray]],
    steps: int = 200,
    learning_rate: float = 0.05,
    reg: Optional[float] = None,
    seed: RngLike = 0,
) -> np.ndarray:
    """Fold in a batch of unseen users, one row per history.

    Each history runs the same deterministic SGD as :func:`fold_in_user`
    with the same *seed*, so ``fold_in_users(m, hs)[i]`` equals
    ``fold_in_user(m, hs[i])``.  Returns shape ``(len(histories), K)``.
    """
    vectors = [
        fold_in_user(
            model, history, steps=steps, learning_rate=learning_rate,
            reg=reg, seed=seed,
        )
        for history in histories
    ]
    if not vectors:
        return np.empty((0, model.factor_set.factors))
    return np.stack(vectors)


def score_for_vector(
    model: TaxonomyFactorModel,
    vector: np.ndarray,
    history: Optional[Sequence[np.ndarray]] = None,
    items: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Eq. 3 scores for an externally supplied user vector.

    Used together with :func:`fold_in_user` to serve users that were not
    part of training.
    """
    fs = model.factor_set
    query = np.asarray(vector, dtype=np.float64).copy()
    if model.config.markov_order > 0 and history:
        from repro.core.affinity import context_items_weights
        from repro.core.factors import KIND_NEXT

        prev_items, weights = context_items_weights(
            history, model.config.markov_order, model.config.alpha
        )
        if prev_items.size:
            query += weights @ fs.effective_items(prev_items, kind=KIND_NEXT)
    return fs.effective_items(items) @ query + fs.bias_of_items(items)


def recommend_for_history(
    model: TaxonomyFactorModel,
    history: Sequence[np.ndarray],
    k: int = 10,
    steps: int = 200,
    seed: RngLike = 0,
) -> np.ndarray:
    """One-call fold-in: top-*k* items for a brand-new user's history.

    Items already in *history* are excluded (recommenders suggest new
    items, Sec. 7.1).
    """
    vector = fold_in_user(model, history, steps=steps, seed=seed)
    scores = score_for_vector(model, vector, history)
    if history:
        bought = np.unique(np.concatenate(list(history)))
        scores[bought] = -np.inf
    return top_k(scores, min(k, scores.size))
