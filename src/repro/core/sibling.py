"""Sibling-based training (paper Sec. 4.2).

Random negative sampling teaches coarse preferences ("the user prefers the
subtree of S to the subtree of T") but never pits *siblings* against each
other.  Sibling-based training fixes that: for a purchased item ``i``, every
node ``p^m(i)`` on its root path spawns one extra BPR example whose negative
is a random *sibling* of ``p^m(i)``.  Each purchase therefore yields up to
``D`` additional node-level examples.

:class:`SiblingSampler` vectorizes this: sibling lists are flattened into a
CSR-like (offsets, values) pair so a whole batch of positives expands into
node-level example arrays with no per-node Python work.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.tree import ROOT, Taxonomy
from repro.utils.rng import RngLike, ensure_rng


class SiblingSampler:
    """Vectorized sampling of sibling negatives along ancestor chains."""

    def __init__(self, taxonomy: Taxonomy, levels: int):
        self.taxonomy = taxonomy
        self.levels = int(levels)
        n = taxonomy.n_nodes
        counts = np.zeros(n + 1, dtype=np.int64)  # +1 for the pad id
        chunks = []
        for node in range(n):
            sibs = taxonomy.siblings(node)
            counts[node] = sibs.size
            chunks.append(sibs)
        self.offsets = np.zeros(n + 2, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        self.values = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        self.counts = counts
        # Chains for node-level examples, truncated like the item chains.
        chains = taxonomy.ancestor_matrix(levels)
        pad_row = np.full((1, levels), taxonomy.pad_id, dtype=np.int64)
        self.node_chains = np.concatenate([chains, pad_row], axis=0)

    def sample_siblings(
        self, nodes: np.ndarray, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A random sibling for each node; ``valid`` marks nodes that have one."""
        rng = ensure_rng(rng)
        nodes = np.asarray(nodes, dtype=np.int64)
        counts = self.counts[nodes]
        valid = counts > 0
        picks = np.zeros(nodes.size, dtype=np.int64)
        if valid.any():
            offsets = self.offsets[nodes[valid]]
            ridx = (rng.random(int(valid.sum())) * counts[valid]).astype(np.int64)
            picks[valid] = self.values[offsets + ridx]
        return picks, valid

    def expand_batch(
        self,
        item_chains: np.ndarray,
        rng: RngLike = None,
        excluded_nodes: Optional[Sequence[frozenset]] = None,
        resample_attempts: int = 4,
        min_level: int = 0,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Node-level sibling examples for a batch of positive items.

        Parameters
        ----------
        item_chains:
            ``(M, U)`` ancestor chains of the batch's positive items (column
            ``m`` holds ``p^m(i)``, padded with the pad id).
        excluded_nodes:
            Optional per-batch-row node sets that must not appear as
            negatives — typically the ancestors of *every* item in the
            transaction, which extends BPR's ``j ∉ B_t`` rule to the node
            level (a sibling category the user also bought from is not a
            valid negative).  Conflicting picks are resampled, then dropped.
        min_level:
            Lowest chain level to expand (0 = the item itself).  On small
            leaf categories, item-level sibling negatives are frequently
            the user's *future* purchases; ``min_level=1`` restricts the
            examples to category-vs-category preferences.

        Returns
        -------
        (source_row, pos_nodes, neg_nodes):
            Parallel arrays over the generated examples.  ``source_row``
            indexes back into the original batch so callers can reuse the
            example's user and temporal context.  One example is emitted per
            (batch row, chain level) whose node exists and has a sibling.
        """
        rng = ensure_rng(rng)
        batch_size, levels = item_chains.shape
        pad = self.taxonomy.pad_id
        sources = []
        positives = []
        negatives = []
        for m in range(min_level, levels):
            nodes = item_chains[:, m]
            real = (nodes != pad) & (nodes != ROOT)
            if not real.any():
                continue
            picks, valid = self.sample_siblings(nodes, rng)
            keep = real & valid
            if excluded_nodes is not None and keep.any():
                for row in np.flatnonzero(keep):
                    banned = excluded_nodes[row]
                    attempt = 0
                    while (
                        int(picks[row]) in banned
                        and attempt < resample_attempts
                    ):
                        resampled, ok = self.sample_siblings(
                            nodes[row : row + 1], rng
                        )
                        if not ok[0]:
                            break
                        picks[row] = resampled[0]
                        attempt += 1
                    if int(picks[row]) in banned:
                        keep[row] = False
            if not keep.any():
                continue
            sources.append(np.flatnonzero(keep))
            positives.append(nodes[keep])
            negatives.append(picks[keep])
        if not sources:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate(sources),
            np.concatenate(positives),
            np.concatenate(negatives),
        )

    def chains_of(self, nodes: np.ndarray) -> np.ndarray:
        """Truncated ancestor chains of arbitrary node ids."""
        return self.node_chains[np.asarray(nodes, dtype=np.int64)]
