"""Numerically stable pieces of the BPR objective (Sec. 2 / Sec. 4.1).

BPR maximizes ``Σ ln σ(s(i) − s(j)) − λ‖Θ‖²`` over (positive, negative)
pairs.  These helpers are shared by the serial trainer, the threaded
trainer, and the tests that verify gradients by finite differences.
"""

from __future__ import annotations

import numpy as np


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Logistic function ``1 / (1 + e^{-z})``, stable for large ``|z|``."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out


def log_sigmoid(z: np.ndarray) -> np.ndarray:
    """``ln σ(z)`` computed without overflow: ``-log1p(exp(-z))`` piecewise."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = -np.log1p(np.exp(-z[positive]))
    out[~positive] = z[~positive] - np.log1p(np.exp(z[~positive]))
    return out


def bpr_coefficient(score_diff: np.ndarray) -> np.ndarray:
    """The paper's ``c = 1 − σ(s(i) − s(j))`` multiplier of every gradient."""
    return 1.0 - sigmoid(score_diff)


def bpr_pair_loss(score_diff: np.ndarray) -> float:
    """Mean negative log-likelihood ``−ln σ(s(i) − s(j))`` of a pair batch."""
    diffs = np.asarray(score_diff, dtype=np.float64)
    if diffs.size == 0:
        return 0.0
    return float(-log_sigmoid(diffs).mean())
