"""Recall-versus-throughput curves for approximate retrieval modes.

The exact serving paths (``retrieval="exact"`` / ``"pruned"``) return
provably identical rankings, so they need no quality measurement.  The
approximate tiers (``retrieval="budget"`` / ``"ivf"``) trade recall for
throughput behind a single knob — this module measures that trade so the
knob can be *chosen* instead of guessed:

* :func:`recall_vs_reference` — mean per-row overlap between an
  approximate ranking page and the exact reference (the standard
  recall@k of ANN evaluation);
* :func:`sweep_recall` — run a :class:`~repro.serving.index.SubtreeIndex`
  over a grid of budgets and nprobes and emit a
  :class:`RecallCurve`: one :class:`RecallPoint` per operating point with
  its recall@k, scan time, rows/sec, and the fraction of the catalog it
  actually scored.

``benchmarks/bench_index.py`` archives the curve in ``BENCH_index.json``
and gates the shipped operating points (>= 95% recall@10 at >= 5x
brute-force throughput on the full-mode catalog); the property suite in
``tests/test_retrieval_properties.py`` uses the same helpers to assert
recall is monotone non-decreasing in the knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.index import SubtreeIndex


def recall_vs_reference(
    candidate_items: np.ndarray, reference_items: np.ndarray
) -> float:
    """Mean per-row fraction of the reference ranking that was recovered.

    Both arguments are ``(n_rows, k)`` ranking pages as the serving paths
    return them — int64 item indices, best first, padded with ``-1``.
    Order inside a page is ignored (recall, not rank correlation); pad
    slots are ignored on both sides.  Rows whose reference page holds no
    real items (fully-banned users, empty catalogs) are skipped; if every
    row is skipped the recall is defined as ``1.0`` — there was nothing
    to miss.

    Examples
    --------
    >>> import numpy as np
    >>> approx = np.array([[3, 1, -1], [9, 8, 7]])
    >>> exact = np.array([[1, 2, 3], [7, 8, 9]])
    >>> round(recall_vs_reference(approx, exact), 4)
    0.8333
    """
    candidate_items = np.asarray(candidate_items, dtype=np.int64)
    reference_items = np.asarray(reference_items, dtype=np.int64)
    if candidate_items.ndim != 2 or reference_items.ndim != 2:
        raise ValueError(
            f"ranking pages must be 2-d, got {candidate_items.shape} "
            f"and {reference_items.shape}"
        )
    if candidate_items.shape[0] != reference_items.shape[0]:
        raise ValueError(
            f"got {candidate_items.shape[0]} candidate rows for "
            f"{reference_items.shape[0]} reference rows"
        )
    fractions: List[float] = []
    for row in range(reference_items.shape[0]):
        wanted = reference_items[row]
        wanted = wanted[wanted >= 0]
        if wanted.size == 0:
            continue
        got = candidate_items[row]
        got = got[got >= 0]
        hits = int(np.isin(wanted, got).sum())
        fractions.append(hits / wanted.size)
    if not fractions:
        return 1.0
    return float(np.mean(fractions))


@dataclass(frozen=True)
class RecallPoint:
    """One measured operating point of an approximate retrieval mode.

    Attributes
    ----------
    mode:
        ``"budget"`` or ``"ivf"``.
    knob:
        The budget / nprobe value measured (``None`` = exhaustive).
    recall:
        recall@k against the exact reference ranking (1.0 = identical
        candidate sets).
    seconds:
        Total scan wall time over all repeats.
    rows_per_second:
        Query rows ranked per second of scan time.
    nodes_scored:
        Dot products one sweep pass computed (the paper's
        hardware-independent work measure).
    scanned_fraction:
        ``nodes_scored / (n_rows * n_indexed)`` — the fraction of the
        brute-force work this operating point actually did.
    """

    mode: str
    knob: Optional[int]
    recall: float
    seconds: float
    rows_per_second: float
    nodes_scored: int
    scanned_fraction: float

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready summary (one curve sample)."""
        return {
            "mode": self.mode,
            "knob": self.knob,
            "recall": self.recall,
            "seconds": self.seconds,
            "rows_per_second": self.rows_per_second,
            "nodes_scored": self.nodes_scored,
            "scanned_fraction": self.scanned_fraction,
        }


@dataclass(frozen=True)
class RecallCurve:
    """A recall@k-vs-throughput sweep over budget / nprobe grids.

    ``points`` holds one :class:`RecallPoint` per measured knob, budget
    points first (in the order swept), then nprobe points.
    """

    k: int
    n_rows: int
    n_indexed: int
    points: Tuple[RecallPoint, ...]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready payload (what the benchmark archives)."""
        return {
            "k": self.k,
            "n_rows": self.n_rows,
            "n_indexed": self.n_indexed,
            "points": [point.as_dict() for point in self.points],
        }

    def best(
        self, mode: str, min_recall: float
    ) -> Optional[RecallPoint]:
        """The fastest measured *mode* point with recall >= *min_recall*.

        ``None`` when no swept knob reaches the floor — the caller
        should widen the sweep rather than ship a knob that misses its
        recall target.
        """
        eligible = [
            point
            for point in self.points
            if point.mode == mode and point.recall >= min_recall
        ]
        if not eligible:
            return None
        return max(eligible, key=lambda point: point.rows_per_second)


def sweep_recall(
    index: SubtreeIndex,
    queries: np.ndarray,
    *,
    k: int = 10,
    budgets: Sequence[int] = (),
    nprobes: Sequence[int] = (),
    banned: Optional[Sequence[Optional[np.ndarray]]] = None,
    repeats: int = 1,
) -> RecallCurve:
    """Measure recall@*k* and scan throughput over knob grids.

    The exact reference is one :meth:`SubtreeIndex.top_k` pass (provably
    identical to brute force), so the sweep never materializes a dense
    ``(n_rows, n_items)`` score matrix.  Each knob is scanned *repeats*
    times; the recorded seconds cover all repeats and
    ``rows_per_second`` amortizes over them, damping timer noise on
    small catalogs.

    Parameters
    ----------
    index:
        A :class:`~repro.serving.index.SubtreeIndex` built with
        ``approx=True``.
    queries:
        ``(n_rows, K)`` query vectors, as the serving paths produce.
    k:
        Ranking depth of both the reference and the approximate pages.
    budgets, nprobes:
        Knob grids to sweep (either may be empty).
    banned:
        Optional per-row banned ids, forwarded to every scan — sweep
        with the same bans the serving path would apply.
    repeats:
        Scans averaged per point (>= 1).
    """
    if not index.approx:
        raise ValueError(
            "sweep_recall needs an index built with approx=True"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    queries = np.asarray(queries, dtype=np.float64)
    reference = index.top_k(queries, k, banned=banned)
    points: List[RecallPoint] = []
    n_rows = int(queries.shape[0])
    brute_nodes = max(1, n_rows * index.n_indexed)
    grids = [("budget", index.top_k_budget, "budget", budgets),
             ("ivf", index.top_k_ivf, "nprobe", nprobes)]
    for mode, scan, knob_name, knob_values in grids:
        for knob in knob_values:
            started = time.perf_counter()
            for _ in range(repeats):
                page = scan(queries, k, banned=banned, **{knob_name: knob})
            seconds = max(time.perf_counter() - started, 1e-12)
            points.append(
                RecallPoint(
                    mode=mode,
                    knob=None if knob is None else int(knob),
                    recall=recall_vs_reference(
                        page.items, reference.items
                    ),
                    seconds=seconds,
                    rows_per_second=n_rows * repeats / seconds,
                    nodes_scored=int(page.nodes_scored),
                    scanned_fraction=page.nodes_scored / brute_nodes,
                )
            )
    return RecallCurve(
        k=int(k),
        n_rows=n_rows,
        n_indexed=int(index.n_indexed),
        points=tuple(points),
    )
