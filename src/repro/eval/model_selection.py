"""Cross-validation and hyper-parameter search (paper Secs. 2.2, 6.2, 7.1).

The paper fixes λ, K, σ, N, and α by cross-validation: "an exhaustive
search is performed over the choices of λ and the best model is picked
accordingly", using each user's **last T training transactions** as the
validation set (Sec. 7.1, T = 1).  :func:`grid_search` reproduces that
protocol for any of the models in this library.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.tf_model import TaxonomyFactorModel
from repro.data.split import TrainTestSplit, holdout_last
from repro.data.transactions import TransactionLog
from repro.eval.protocol import EvalResult, evaluate_model
from repro.taxonomy.tree import Taxonomy
from repro.utils.config import TrainConfig
from repro.utils.logging import get_logger
from repro.utils.validation import check_in, check_positive

logger = get_logger(__name__)

#: Metrics selectable for model choice, mapped to (attribute, maximize?).
_METRICS = {
    "auc": ("auc", True),
    "mean_rank": ("mean_rank", False),
}


def expand_grid(grid: Dict[str, Sequence]) -> List[Dict]:
    """The cross product of a ``{parameter: [values...]}`` grid.

    >>> expand_grid({"reg": [0.1, 0.2], "factors": [8]})
    [{'reg': 0.1, 'factors': 8}, {'reg': 0.2, 'factors': 8}]
    """
    if not grid:
        return [{}]
    keys = list(grid)
    combos = itertools.product(*(grid[k] for k in keys))
    return [dict(zip(keys, values)) for values in combos]


@dataclass
class CandidateResult:
    """One evaluated grid point."""

    params: Dict
    config: TrainConfig
    validation: EvalResult
    fit_seconds: float

    def score(self, metric: str = "auc") -> float:
        attribute, _ = _METRICS[metric]
        return getattr(self.validation, attribute)


@dataclass
class GridSearchResult:
    """Outcome of :func:`grid_search`."""

    best: CandidateResult
    candidates: List[CandidateResult]
    model: Optional[TaxonomyFactorModel] = field(default=None, repr=False)

    def ranking(self, metric: str = "auc") -> List[CandidateResult]:
        """Candidates ordered best-first by *metric*."""
        _, maximize = _METRICS[metric]
        return sorted(  # repro: noqa[REP002] -- orders grid-search candidates by metric, not item scores; stable sort keeps grid order on ties
            self.candidates,
            key=lambda c: c.score(metric),
            reverse=maximize,
        )


def grid_search(
    taxonomy: Taxonomy,
    log: TransactionLog,
    grid: Dict[str, Sequence],
    base_config: Optional[TrainConfig] = None,
    holdout: int = 1,
    metric: str = "auc",
    model_factory: Optional[Callable[..., TaxonomyFactorModel]] = None,
    refit: bool = True,
    verbose: bool = False,
) -> GridSearchResult:
    """Exhaustive hyper-parameter search with last-T-transaction validation.

    Parameters
    ----------
    taxonomy, log:
        The item taxonomy and the *training* purchase log (test data must
        stay untouched, exactly as in the paper).
    grid:
        ``{TrainConfig field: candidate values}``, e.g.
        ``{"reg": [0.001, 0.01, 0.1], "factors": [10, 20, 50]}``.
    base_config:
        Defaults for the fields not being searched.
    holdout:
        How many trailing transactions per user form the validation set
        (the paper's ``T``; default 1).
    metric:
        ``"auc"`` (maximized) or ``"mean_rank"`` (minimized).
    model_factory:
        Model constructor taking ``(taxonomy, config)``; defaults to
        :class:`TaxonomyFactorModel` (pass :class:`~repro.core.mf_model.MFModel`
        to tune the baseline).
    refit:
        Train the winning configuration on the *whole* log before
        returning (the deployment model).
    """
    check_in("metric", metric, tuple(_METRICS))
    check_positive("holdout", holdout)
    if base_config is None:
        base_config = TrainConfig()
    if model_factory is None:
        model_factory = TaxonomyFactorModel

    from repro.train.serial import SerialTrainer

    head, tail = holdout_last(log, holdout)
    validation_split = TrainTestSplit(train=head, test=tail)
    candidates: List[CandidateResult] = []
    for params in expand_grid(grid):
        config = dataclasses.replace(base_config, **params)
        started = time.perf_counter()
        model = model_factory(taxonomy, config)
        SerialTrainer(model).train(head)
        fit_seconds = time.perf_counter() - started
        result = evaluate_model(model, validation_split)
        candidates.append(
            CandidateResult(
                params=params,
                config=config,
                validation=result,
                fit_seconds=fit_seconds,
            )
        )
        if verbose:
            logger.info(
                "grid %s: %s=%.4f (%.1fs)",
                params,
                metric,
                candidates[-1].score(metric),
                fit_seconds,
            )

    if not candidates:
        raise ValueError("the grid is empty")
    _, maximize = _METRICS[metric]
    best = max(candidates, key=lambda c: c.score(metric)) if maximize else min(
        candidates, key=lambda c: c.score(metric)
    )
    final_model = None
    if refit:
        final_model = model_factory(taxonomy, best.config)
        SerialTrainer(final_model).train(log)
    return GridSearchResult(best=best, candidates=candidates, model=final_model)
