"""Ranking metrics (paper Sec. 7.3) plus standard IR extras.

The paper reports two metrics:

* **AUC** — ``1/(|T||X\\T|) Σ_{x∈T, y∉T} δ(r(x) < r(y))``: the probability
  that a random bought item outranks a random non-bought item;
* **average mean rank** — the mean (1-based, best = 1) rank of the bought
  items, averaged per user then across users; more sensitive than AUC when
  the candidate set is huge.

Ties are handled by mid-rank averaging (Mann-Whitney convention), which is
what makes cascaded inference's ``-inf`` scores for pruned items behave as
"random order among the pruned".  The top-*k* membership metrics
(hit/precision/recall/NDCG) select through :func:`repro.core.topk.top_k`,
so a tie straddling the k-th score resolves to the same candidates every
ranking path in the library would serve.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy.stats import rankdata

from repro.core.topk import top_k


def _as_positive_indices(positives: Iterable[int], size: int) -> np.ndarray:
    idx = np.unique(np.asarray(list(positives), dtype=np.int64))
    if idx.size and (idx.min() < 0 or idx.max() >= size):
        raise ValueError("positive index out of range")
    return idx


def ranks_from_scores(scores: np.ndarray) -> np.ndarray:
    """1-based descending ranks with tie averaging (best score → rank 1)."""
    scores = np.asarray(scores, dtype=np.float64)
    ascending = rankdata(scores, method="average")
    return scores.size + 1.0 - ascending


def auc(scores: np.ndarray, positives: Iterable[int]) -> float:
    """The paper's AUC over one candidate list.

    Equivalent to the Mann-Whitney statistic: ties count one half.
    Returns ``nan`` when there are no positives or no negatives.
    """
    scores = np.asarray(scores, dtype=np.float64)
    pos = _as_positive_indices(positives, scores.size)
    n_pos = pos.size
    n_neg = scores.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    ascending = rankdata(scores, method="average")
    pos_rank_sum = float(ascending[pos].sum())
    u_statistic = pos_rank_sum - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)


def mean_rank(scores: np.ndarray, positives: Iterable[int]) -> float:
    """Mean 1-based rank of the positives (ties averaged; 1 = best)."""
    scores = np.asarray(scores, dtype=np.float64)
    pos = _as_positive_indices(positives, scores.size)
    if pos.size == 0:
        return float("nan")
    return float(ranks_from_scores(scores)[pos].mean())


def hit_at_k(scores: np.ndarray, positives: Iterable[int], k: int) -> float:
    """1.0 if any positive appears in the top *k*, else 0.0."""
    scores = np.asarray(scores, dtype=np.float64)
    pos = set(int(p) for p in _as_positive_indices(positives, scores.size))
    if not pos:
        return float("nan")
    top = top_k(scores, min(k, scores.size))
    return 1.0 if any(int(t) in pos for t in top) else 0.0


def precision_at_k(scores: np.ndarray, positives: Iterable[int], k: int) -> float:
    """Fraction of the top *k* that are positives."""
    scores = np.asarray(scores, dtype=np.float64)
    pos = set(int(p) for p in _as_positive_indices(positives, scores.size))
    if not pos:
        return float("nan")
    k = min(k, scores.size)
    top = top_k(scores, k)
    return sum(1 for t in top if int(t) in pos) / k


def recall_at_k(scores: np.ndarray, positives: Iterable[int], k: int) -> float:
    """Fraction of the positives that appear in the top *k*."""
    scores = np.asarray(scores, dtype=np.float64)
    pos = set(int(p) for p in _as_positive_indices(positives, scores.size))
    if not pos:
        return float("nan")
    top = top_k(scores, min(k, scores.size))
    return sum(1 for t in top if int(t) in pos) / len(pos)


def reciprocal_rank(scores: np.ndarray, positives: Iterable[int]) -> float:
    """1 / rank of the best-ranked positive (ties averaged)."""
    scores = np.asarray(scores, dtype=np.float64)
    pos = _as_positive_indices(positives, scores.size)
    if pos.size == 0:
        return float("nan")
    return float(1.0 / ranks_from_scores(scores)[pos].min())


def ndcg_at_k(scores: np.ndarray, positives: Iterable[int], k: int) -> float:
    """Binary-relevance NDCG@k."""
    scores = np.asarray(scores, dtype=np.float64)
    pos = set(int(p) for p in _as_positive_indices(positives, scores.size))
    if not pos:
        return float("nan")
    k = min(k, scores.size)
    order = top_k(scores, k)
    gains = np.array([1.0 if int(i) in pos else 0.0 for i in order])
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = float((gains * discounts[: gains.size]).sum())
    ideal_hits = min(len(pos), k)
    ideal = float(discounts[:ideal_hits].sum())
    return dcg / ideal if ideal > 0 else float("nan")


def nanmean(values: Sequence[float]) -> float:
    """Mean ignoring NaNs; NaN when every value is NaN (no warning)."""
    arr = np.asarray(list(values), dtype=np.float64)
    good = arr[~np.isnan(arr)]
    return float(good.mean()) if good.size else float("nan")
