"""Statistical significance of model comparisons.

The paper reports point estimates; a production evaluation should also say
whether "TF beats MF" survives sampling noise.  Both tests operate on the
**per-user** metric arrays an :class:`~repro.eval.protocol.EvalResult`
already carries, treating users as the resampling unit:

* :func:`paired_bootstrap` — bootstrap distribution of the mean
  difference, reporting a confidence interval and the probability that the
  sign flips;
* :func:`sign_test` — distribution-free binomial test on per-user wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats

from repro.eval.protocol import EvalResult
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive


@dataclass
class BootstrapResult:
    """Outcome of a paired bootstrap comparison (model A minus model B)."""

    mean_difference: float
    ci_low: float
    ci_high: float
    p_sign_flip: float  # share of resamples where the difference's sign flips
    n_users: int

    @property
    def significant(self) -> bool:
        """True when the confidence interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


@dataclass
class SignTestResult:
    """Outcome of a per-user sign test (model A vs model B)."""

    wins: int
    losses: int
    ties: int
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def _paired_values(
    a: EvalResult, b: EvalResult, metric: str
) -> Tuple[np.ndarray, np.ndarray]:
    attribute = {"auc": "per_user_auc", "mean_rank": "per_user_rank"}[metric]
    va = getattr(a, attribute)
    vb = getattr(b, attribute)
    if va is None or vb is None:
        raise ValueError(
            "EvalResults must carry per-user arrays (evaluate_model does)"
        )
    if va.shape != vb.shape:
        raise ValueError(
            "results cover different user sets; evaluate both models on "
            "the same split and user ordering"
        )
    keep = ~(np.isnan(va) | np.isnan(vb))
    return va[keep], vb[keep]


def paired_bootstrap(
    a: EvalResult,
    b: EvalResult,
    metric: str = "auc",
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: RngLike = 0,
) -> BootstrapResult:
    """Bootstrap the per-user mean difference ``metric(A) − metric(B)``."""
    check_positive("n_resamples", n_resamples)
    check_fraction("confidence", confidence, inclusive=False)
    va, vb = _paired_values(a, b, metric)
    if va.size == 0:
        raise ValueError("no users with both results")
    rng = ensure_rng(seed)
    differences = va - vb
    observed = float(differences.mean())
    indices = rng.integers(0, differences.size, size=(n_resamples, differences.size))
    resampled = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled, [alpha, 1.0 - alpha])
    if observed >= 0:
        flips = float(np.mean(resampled < 0))
    else:
        flips = float(np.mean(resampled > 0))
    return BootstrapResult(
        mean_difference=observed,
        ci_low=float(low),
        ci_high=float(high),
        p_sign_flip=flips,
        n_users=int(differences.size),
    )


def sign_test(
    a: EvalResult,
    b: EvalResult,
    metric: str = "auc",
) -> SignTestResult:
    """Two-sided binomial sign test on per-user wins of A over B.

    For ``mean_rank`` a *lower* value is a win.
    """
    va, vb = _paired_values(a, b, metric)
    if metric == "mean_rank":
        wins = int(np.sum(va < vb))
        losses = int(np.sum(va > vb))
    else:
        wins = int(np.sum(va > vb))
        losses = int(np.sum(va < vb))
    ties = int(va.size - wins - losses)
    decided = wins + losses
    if decided == 0:
        p_value = 1.0
    else:
        p_value = float(
            stats.binomtest(wins, decided, 0.5, alternative="two-sided").pvalue
        )
    return SignTestResult(wins=wins, losses=losses, ties=ties, p_value=p_value)


def compare_models(
    a: EvalResult,
    b: EvalResult,
    metric: str = "auc",
    seed: RngLike = 0,
) -> str:
    """One-line verdict combining both tests (for reports and logs)."""
    boot = paired_bootstrap(a, b, metric=metric, seed=seed)
    sign = sign_test(a, b, metric=metric)
    verdict = "significant" if (boot.significant and sign.significant) else "not significant"
    return (
        f"Δ{metric}={boot.mean_difference:+.4f} "
        f"[{boot.ci_low:+.4f}, {boot.ci_high:+.4f}] "
        f"wins {sign.wins}/{sign.wins + sign.losses} "
        f"(sign-test p={sign.p_value:.2e}) -> {verdict}"
    )
