"""The paper's evaluation protocol (Sec. 7.1, 7.3, 7.4).

For every user with test data, the model predicts the user's **first test
transaction** (the paper's ``T = 1``) given the user's training history;
AUC and mean rank are computed per user over the full item candidate set
and then averaged across users.

Variants implemented here:

* :func:`evaluate_model` — product-level AUC / mean rank (Figs. 6a/b/e, 7a/b/d/f);
* :func:`evaluate_category_level` — structured ranking at a taxonomy level
  (Figs. 6c/d);
* :func:`evaluate_cold_start` — rank quality of items unseen in training
  (Fig. 7c);
* :func:`evaluate_cascade` — cascaded-inference accuracy/work trade-off
  (Figs. 8c/d);
* :func:`evaluate_parallel` — user-partitioned parallel evaluation, the
  laptop-scale stand-in for the paper's Hadoop evaluation (Sec. 6.2);
* :func:`evaluate_topk` — top-k serving quality (precision/recall/hit-rate)
  computed through the ``repro.serving`` protocol's ``recommend_batch``, so
  it measures exactly what :class:`~repro.serving.service.RecommenderService`
  would return to a caller.

Every entry point takes any object satisfying the
:class:`~repro.serving.protocol.Recommender` protocol (TF, MF, popularity,
random, fold-in adapters), not just the paper's models.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cascade import CascadedRecommender
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.split import TrainTestSplit
from repro.eval.metrics import auc, mean_rank, nanmean
from repro.eval.ranking import batched
from repro.utils.config import CascadeConfig
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive


@dataclass
class EvalResult:
    """Aggregated ranking quality over the evaluated users."""

    auc: float
    mean_rank: float
    n_users: int
    per_user_auc: np.ndarray = field(repr=False, default=None)
    per_user_rank: np.ndarray = field(repr=False, default=None)
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class ColdStartResult:
    """Rank quality restricted to items absent from training (Fig. 7c).

    ``score`` is the normalized rank ``1 − (rank − 1)/(n_candidates − 1)``
    averaged over every purchase of a new item (1 = ranked first,
    0.5 ≈ random) — the scale Fig. 7(c) plots.  ``rank`` is the raw average.
    """

    score: float
    rank: float
    n_events: int
    n_new_items: int


@dataclass
class TopKResult:
    """Top-*k* serving quality through ``recommend_batch`` (per-user means).

    ``precision`` counts hits among the *k* returned slots, ``recall``
    against the user's held-out positives, and ``hit_rate`` is the fraction
    of users with at least one hit — the quantities a serving dashboard
    tracks, computed on exactly the rankings the serving layer emits
    (training purchases excluded, ``-1`` pads ignored).
    """

    precision: float
    recall: float
    hit_rate: float
    k: int
    n_users: int


@dataclass
class CascadeEvalResult:
    """Accuracy/work trade-off of cascaded inference (Figs. 8c/d)."""

    auc: float
    naive_auc: float
    work_ratio: float
    time_ratio: float
    n_users: int

    @property
    def accuracy_ratio(self) -> float:
        """The y-axis of Fig. 8(c,d): cascaded AUC / naive AUC."""
        if self.naive_auc == 0 or np.isnan(self.naive_auc):
            return float("nan")
        return self.auc / self.naive_auc


# ----------------------------------------------------------------------
# Core protocol
# ----------------------------------------------------------------------
def _evaluate_users(
    model,
    split: TrainTestSplit,
    users: np.ndarray,
    first_t: int,
    batch_size: int,
    exclude_train: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-user AUC and mean rank over *users* (product level)."""
    aucs: List[float] = []
    ranks: List[float] = []
    for chunk in batched(users, batch_size):
        chunk = np.asarray(chunk, dtype=np.int64)
        scores = model.score_matrix(chunk)
        for row, user in enumerate(chunk):
            user = int(user)
            test_txns = split.test.user_transactions(user)[:first_t]
            positives = (
                np.unique(np.concatenate(test_txns)) if test_txns else None
            )
            if positives is None or positives.size == 0:
                aucs.append(float("nan"))
                ranks.append(float("nan"))
                continue
            user_scores = scores[row]
            if exclude_train:
                user_scores = user_scores.copy()
                train_items = split.train.user_items(user)
                keep = np.setdiff1d(train_items, positives)
                user_scores[keep] = -np.inf
            aucs.append(auc(user_scores, positives))
            ranks.append(mean_rank(user_scores, positives))
    return np.asarray(aucs), np.asarray(ranks)


def _sample_users(
    users: np.ndarray, sample_users: Optional[int], seed: RngLike
) -> np.ndarray:
    """A fixed-size seeded subsample of *users* (sorted), or all of them.

    Routed through :mod:`repro.utils.rng` so a given ``(users, seed)``
    pair always evaluates the same subset — per-epoch evaluation curves
    stay comparable, and identical specs reproduce identical metrics.
    """
    if sample_users is None or sample_users >= users.size:
        return users
    check_positive("sample_users", sample_users)
    rng = ensure_rng(seed)
    return np.sort(rng.choice(users, size=int(sample_users), replace=False))


def evaluate_model(
    model,
    split: TrainTestSplit,
    first_t: int = 1,
    batch_size: int = 256,
    exclude_train: bool = False,
    users: Optional[np.ndarray] = None,
    sample_users: Optional[int] = None,
    seed: RngLike = 0,
) -> EvalResult:
    """Product-level evaluation on the first *first_t* test transactions.

    Works for any model exposing ``score_matrix(users)`` (TF, MF,
    popularity, random).  ``exclude_train`` pushes the user's training
    items to the bottom of the candidate list before scoring metrics.
    ``sample_users`` evaluates a seeded subsample of the candidate users
    (see :func:`_sample_users`) — the cheap mid-training protocol
    :class:`repro.train.callbacks.EvalCallback` uses.
    """
    check_positive("first_t", first_t)
    if users is None:
        users = split.test_users()
    users = np.asarray(users, dtype=np.int64)
    users = _sample_users(users, sample_users, seed)
    aucs, ranks = _evaluate_users(
        model, split, users, first_t, batch_size, exclude_train
    )
    return EvalResult(
        auc=nanmean(aucs),
        mean_rank=nanmean(ranks),
        n_users=int(np.count_nonzero(~np.isnan(aucs))),
        per_user_auc=aucs,
        per_user_rank=ranks,
    )


def evaluate_category_level(
    model: TaxonomyFactorModel,
    split: TrainTestSplit,
    level: int,
    first_t: int = 1,
    batch_size: int = 256,
    users: Optional[np.ndarray] = None,
) -> EvalResult:
    """Structured ranking at taxonomy depth *level* (Figs. 6c/d).

    Candidates are the taxonomy nodes at *level*; a node is a positive if
    any item of the user's first test transaction(s) falls under it.
    """
    check_positive("first_t", first_t)
    taxonomy = model.taxonomy
    nodes = taxonomy.nodes_at_level(level)
    if nodes.size == 0:
        raise ValueError(f"taxonomy has no nodes at level {level}")
    node_pos = {int(node): i for i, node in enumerate(nodes)}
    effective = model.factor_set.effective_nodes(nodes)  # (C, K)
    node_bias = model.factor_set.bias_of_nodes(nodes)  # (C,)

    if users is None:
        users = split.test_users()
    users = np.asarray(users, dtype=np.int64)
    aucs: List[float] = []
    ranks: List[float] = []
    for chunk in batched(users, batch_size):
        chunk = np.asarray(chunk, dtype=np.int64)
        queries = model.query_matrix(chunk)  # (M, K)
        scores = queries @ effective.T + node_bias[None, :]  # (M, C)
        for row, user in enumerate(chunk):
            user = int(user)
            test_txns = split.test.user_transactions(user)[:first_t]
            if not test_txns:
                aucs.append(float("nan"))
                ranks.append(float("nan"))
                continue
            items = np.unique(np.concatenate(test_txns))
            categories = taxonomy.item_category(items, level)
            positives = sorted(
                {node_pos[int(c)] for c in categories if int(c) in node_pos}
            )
            if not positives:
                aucs.append(float("nan"))
                ranks.append(float("nan"))
                continue
            aucs.append(auc(scores[row], positives))
            ranks.append(mean_rank(scores[row], positives))
    return EvalResult(
        auc=nanmean(aucs),
        mean_rank=nanmean(ranks),
        n_users=int(np.count_nonzero(~np.isnan(np.asarray(aucs)))),
        per_user_auc=np.asarray(aucs),
        per_user_rank=np.asarray(ranks),
        extras={"level": float(level), "n_candidates": float(nodes.size)},
    )


def evaluate_topk(
    model,
    split: TrainTestSplit,
    k: int = 10,
    first_t: int = 1,
    batch_size: int = 256,
    users: Optional[np.ndarray] = None,
) -> TopKResult:
    """Precision/recall/hit-rate at *k* via the serving batch path.

    *model* is anything satisfying the
    :class:`~repro.serving.protocol.Recommender` protocol; rankings come
    from ``recommend_batch`` — the same call
    :class:`~repro.serving.service.RecommenderService` executes — so this
    evaluates the served lists, not an idealized score matrix.
    """
    check_positive("first_t", first_t)
    check_positive("k", k)
    if users is None:
        users = split.test_users()
    users = np.asarray(users, dtype=np.int64)
    precisions: List[float] = []
    recalls: List[float] = []
    hits: List[float] = []
    for chunk in batched(users, batch_size):
        chunk = np.asarray(chunk, dtype=np.int64)
        recs = model.recommend_batch(chunk, k=k)
        for row, user in enumerate(chunk):
            test_txns = split.test.user_transactions(int(user))[:first_t]
            if not test_txns:
                continue
            positives = np.unique(np.concatenate(test_txns))
            returned = recs[row]
            returned = returned[returned >= 0]
            n_hits = int(np.isin(returned, positives).sum())
            precisions.append(n_hits / k)
            recalls.append(n_hits / positives.size)
            hits.append(1.0 if n_hits else 0.0)
    n_users = len(precisions)
    if n_users == 0:
        return TopKResult(
            precision=float("nan"), recall=float("nan"),
            hit_rate=float("nan"), k=k, n_users=0,
        )
    return TopKResult(
        precision=float(np.mean(precisions)),
        recall=float(np.mean(recalls)),
        hit_rate=float(np.mean(hits)),
        k=k,
        n_users=n_users,
    )


def evaluate_cold_start(
    model,
    split: TrainTestSplit,
    batch_size: int = 256,
    users: Optional[np.ndarray] = None,
) -> ColdStartResult:
    """Rank quality of never-trained items, per purchase event (Fig. 7c)."""
    new_items = set(int(i) for i in split.new_items())
    if not new_items:
        return ColdStartResult(
            score=float("nan"), rank=float("nan"), n_events=0, n_new_items=0
        )
    if users is None:
        users = split.test_users()
    users = np.asarray(users, dtype=np.int64)

    event_ranks: List[float] = []
    n_items = split.train.n_items
    for chunk in batched(users, batch_size):
        chunk = np.asarray(chunk, dtype=np.int64)
        scores = model.score_matrix(chunk)
        # Descending tie-averaged ranks, vectorized across the chunk.
        order_desc = np.argsort(-scores, axis=1, kind="stable")  # repro: noqa[REP002] -- full ranking of every item, stable on negated scores == the (score desc, index asc) total order
        rank_of_item = np.empty_like(order_desc)
        row_index = np.arange(chunk.size)[:, None]
        rank_of_item[row_index, order_desc] = np.arange(1, n_items + 1)
        for row, user in enumerate(chunk):
            user = int(user)
            for basket in split.test.user_transactions(user):
                for item in basket:
                    if int(item) in new_items:
                        event_ranks.append(float(rank_of_item[row, int(item)]))
    if not event_ranks:
        return ColdStartResult(
            score=float("nan"),
            rank=float("nan"),
            n_events=0,
            n_new_items=len(new_items),
        )
    ranks = np.asarray(event_ranks)
    score = float(np.mean(1.0 - (ranks - 1.0) / max(n_items - 1, 1)))
    return ColdStartResult(
        score=score,
        rank=float(ranks.mean()),
        n_events=int(ranks.size),
        n_new_items=len(new_items),
    )


def evaluate_cascade(
    model: TaxonomyFactorModel,
    split: TrainTestSplit,
    config: CascadeConfig,
    first_t: int = 1,
    users: Optional[np.ndarray] = None,
) -> CascadeEvalResult:
    """Cascaded-inference accuracy and work vs. the naive full ranking."""
    recommender = CascadedRecommender(model, config)
    if users is None:
        users = split.test_users()
    users = np.asarray(users, dtype=np.int64)

    cascade_aucs: List[float] = []
    naive_aucs: List[float] = []
    nodes_scored = 0
    cascade_seconds = 0.0
    naive_seconds = 0.0
    n_items = model.n_items
    for user in users:
        user = int(user)
        test_txns = split.test.user_transactions(user)[:first_t]
        if not test_txns:
            continue
        positives = np.unique(np.concatenate(test_txns))

        result = recommender.rank(user)
        cascade_seconds += result.seconds
        nodes_scored += result.nodes_scored
        cascade_aucs.append(auc(result.full_scores(n_items), positives))

        started = time.perf_counter()
        naive_scores = model.score_items(user)
        naive_seconds += time.perf_counter() - started
        naive_aucs.append(auc(naive_scores, positives))

    evaluated = len(cascade_aucs)
    naive_cost = recommender.naive_cost() * max(evaluated, 1)
    return CascadeEvalResult(
        auc=nanmean(cascade_aucs),
        naive_auc=nanmean(naive_aucs),
        work_ratio=nodes_scored / naive_cost if naive_cost else float("nan"),
        time_ratio=(
            cascade_seconds / naive_seconds if naive_seconds > 0 else float("nan")
        ),
        n_users=evaluated,
    )


def _partition_quotas(sizes: List[int], total: int) -> List[int]:
    """Distribute *total* sample slots over partitions of the given sizes.

    Largest-remainder apportionment: quotas are proportional, never
    exceed a partition's size, and always sum to
    ``min(total, sum(sizes))`` — so a tiny ``sample_users`` can never
    round every partition down to an empty evaluation.
    """
    population = sum(sizes)
    total = min(total, population)
    if total == 0 or population == 0:
        return [0] * len(sizes)
    exact = [size * total / population for size in sizes]
    quotas = [int(x) for x in exact]
    remainders = sorted(
        range(len(sizes)),
        key=lambda i: (exact[i] - quotas[i], sizes[i]),
        reverse=True,
    )
    shortfall = total - sum(quotas)
    for index in remainders:
        if shortfall == 0:
            break
        if quotas[index] < sizes[index]:
            quotas[index] += 1
            shortfall -= 1
    # Capacity left over (some partitions saturated): spill anywhere open.
    for index in range(len(sizes)):
        while shortfall > 0 and quotas[index] < sizes[index]:
            quotas[index] += 1
            shortfall -= 1
    return quotas


def evaluate_parallel(
    model,
    split: TrainTestSplit,
    n_workers: int = 4,
    first_t: int = 1,
    batch_size: int = 256,
    exclude_train: bool = False,
    sample_users: Optional[int] = None,
    seed: RngLike = 0,
) -> EvalResult:
    """User-partitioned parallel evaluation (the paper's Sec. 6.2 pattern).

    Users are partitioned across *n_workers* threads; numpy's matrix
    products release the GIL, so chunks evaluate concurrently.  Results are
    identical to :func:`evaluate_model`.

    ``sample_users`` subsamples within each worker's partition (quota
    proportional to partition size) using per-worker generators derived
    from *seed* via :func:`repro.utils.rng.spawn_rngs` — no cross-worker
    coordination, and bit-identical user sets for identical seeds.
    """
    check_positive("n_workers", n_workers)
    users = split.test_users()
    if users.size == 0:
        return EvalResult(auc=float("nan"), mean_rank=float("nan"), n_users=0)
    partitions = np.array_split(users, n_workers)
    if sample_users is not None and sample_users < users.size:
        check_positive("sample_users", sample_users)
        rngs = spawn_rngs(seed, n_workers)
        quotas = _partition_quotas(
            [part.size for part in partitions], int(sample_users)
        )
        partitions = [
            np.sort(rng.choice(part, size=quota, replace=False))
            if quota
            else part[:0]
            for part, quota, rng in zip(partitions, quotas, rngs)
        ]

    def run(part: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if part.size == 0:
            return np.empty(0), np.empty(0)
        return _evaluate_users(
            model, split, part, first_t, batch_size, exclude_train
        )

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        results = list(pool.map(run, partitions))
    aucs = np.concatenate([r[0] for r in results])
    ranks = np.concatenate([r[1] for r in results])
    return EvalResult(
        auc=nanmean(aucs),
        mean_rank=nanmean(ranks),
        n_users=int(np.count_nonzero(~np.isnan(aucs))),
        per_user_auc=aucs,
        per_user_rank=ranks,
    )
