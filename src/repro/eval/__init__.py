"""Evaluation substrate: metrics and the paper's evaluation protocol."""

from repro.eval.metrics import (
    auc,
    hit_at_k,
    mean_rank,
    nanmean,
    ndcg_at_k,
    precision_at_k,
    ranks_from_scores,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.model_selection import (
    CandidateResult,
    GridSearchResult,
    expand_grid,
    grid_search,
)
from repro.eval.protocol import (
    CascadeEvalResult,
    ColdStartResult,
    EvalResult,
    TopKResult,
    evaluate_cascade,
    evaluate_category_level,
    evaluate_cold_start,
    evaluate_model,
    evaluate_parallel,
    evaluate_topk,
)
from repro.eval.ranking import batched, rank_of, ranks_of, top_k
from repro.eval.recall import (
    RecallCurve,
    RecallPoint,
    recall_vs_reference,
    sweep_recall,
)

__all__ = [
    "auc",
    "mean_rank",
    "ranks_from_scores",
    "hit_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "ndcg_at_k",
    "nanmean",
    "EvalResult",
    "ColdStartResult",
    "CascadeEvalResult",
    "TopKResult",
    "evaluate_topk",
    "evaluate_model",
    "evaluate_category_level",
    "evaluate_cold_start",
    "evaluate_cascade",
    "evaluate_parallel",
    "grid_search",
    "expand_grid",
    "GridSearchResult",
    "CandidateResult",
    "top_k",
    "rank_of",
    "ranks_of",
    "batched",
    "RecallCurve",
    "RecallPoint",
    "recall_vs_reference",
    "sweep_recall",
]
