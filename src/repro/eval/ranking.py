"""Ranking helpers shared by the evaluation protocol and the benches."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.topk import top_k as _topk_select
from repro.eval.metrics import ranks_from_scores


def top_k(scores: np.ndarray, k: int, exclude: Optional[np.ndarray] = None) -> np.ndarray:
    """Indices of the *k* best scores (descending), excluding ``exclude``.

    Selection goes through :func:`repro.core.topk.top_k`, so ties break
    by ascending index — the library's one total order.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if exclude is not None and len(exclude):
        scores = scores.copy()
        scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
    return _topk_select(scores, min(k, scores.size))


def rank_of(scores: np.ndarray, index: int) -> float:
    """1-based, tie-averaged rank of one candidate."""
    return float(ranks_from_scores(scores)[index])


def ranks_of(scores: np.ndarray, indices: Sequence[int]) -> np.ndarray:
    """1-based, tie-averaged ranks of several candidates."""
    ranks = ranks_from_scores(scores)
    return ranks[np.asarray(list(indices), dtype=np.int64)]


def batched(items: Sequence, batch_size: int) -> List[Sequence]:
    """Split a sequence into consecutive chunks of at most *batch_size*."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]
