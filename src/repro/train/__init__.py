"""The unified training front door (the ``repro.train`` package).

One :class:`Trainer` API fits every model the library defines under every
execution regime the paper studies:

* :class:`SerialTrainer` — single-process offline training (Sec. 4);
  vectorized minibatches by default, per-sample mode for exact
  equivalence with the threaded engine;
* :class:`ThreadedTrainer` — lock-based multi-threaded SGD (Sec. 6.1);
* :class:`OnlineTrainer` — incremental streaming updates between
  retrains, against frozen item/taxonomy factors.

All three share one epoch loop, one per-epoch seed policy
(:func:`repro.utils.rng.epoch_seed`), and one callback system
(:class:`EvalCallback`, :class:`EarlyStopping`, :class:`LRSchedule`,
:class:`CheckpointCallback`).  On top, declarative
:class:`~repro.utils.config.ExperimentSpec` files run end to end through
:class:`ExperimentRunner` / :func:`run_experiment` / :func:`sweep` — the
``python -m repro run`` and ``sweep`` commands.

The legacy entry points — ``model.fit(...)`` and
``parallel.ThreadedSGDTrainer`` — remain as thin deprecated shims over
these trainers.
"""

from repro.train.base import TrainEpoch, Trainer, TrainerResult
from repro.train.callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopping,
    EvalCallback,
    LambdaCallback,
    LRSchedule,
    ProgressCallback,
)
from repro.train.online import OnlineTrainer
from repro.train.runner import (
    ExperimentReport,
    ExperimentResult,
    ExperimentRunner,
    SweepCell,
    run_experiment,
    sweep,
    sweep_table,
    warm_stream_split,
)
from repro.train.serial import SerialTrainer, train_model
from repro.train.threaded import ThreadedTrainer

__all__ = [
    "Trainer",
    "TrainerResult",
    "TrainEpoch",
    "SerialTrainer",
    "train_model",
    "ThreadedTrainer",
    "OnlineTrainer",
    "Callback",
    "CallbackList",
    "LambdaCallback",
    "LRSchedule",
    "EvalCallback",
    "EarlyStopping",
    "CheckpointCallback",
    "ProgressCallback",
    "ExperimentRunner",
    "ExperimentReport",
    "ExperimentResult",
    "SweepCell",
    "run_experiment",
    "sweep",
    "sweep_table",
    "warm_stream_split",
]
