"""Callbacks shared by every training backend.

One callback system for serial, threaded, and online training: schedules
anneal the learning rate, evaluation tracks held-out quality mid-run,
early stopping halts converged runs, and checkpointing writes versioned
:class:`~repro.serving.bundle.ModelBundle` artifacts through a
:class:`~repro.streaming.swap.CheckpointStore` — so an interrupted
training run is recoverable exactly like a streaming deployment.

Dispatch order within an epoch::

    on_epoch_begin(epoch, trainer)      # schedules set trainer.learning_rate
    ... backend runs the epoch ...
    on_epoch_end(epoch, stats, trainer) # eval / early stop / checkpoint

Callbacks run in list order; put an :class:`EvalCallback` *before* any
callback that monitors ``"auc"`` (it reads ``trainer.last_eval``).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.train.base import TrainEpoch, Trainer, TrainerResult
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive

logger = get_logger(__name__)


class Callback:
    """Base class: override any subset of the four hooks."""

    def on_train_begin(self, trainer: Trainer) -> None:  # pragma: no cover
        """Called once before epoch 0 (factors are already initialized)."""

    def on_epoch_begin(self, epoch: int, trainer: Trainer) -> None:
        """Called before each epoch; schedules mutate the rate here."""

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Called after each epoch with its :class:`TrainEpoch` record."""

    def on_train_end(
        self, result: TrainerResult, trainer: Trainer
    ) -> None:  # pragma: no cover
        """Called once after the loop with the final result."""


class CallbackList(Callback):
    """Fan one hook invocation out to an ordered list of callbacks."""

    def __init__(self, callbacks: Sequence[Callback]):
        self.callbacks = list(callbacks)

    def on_train_begin(self, trainer: Trainer) -> None:
        """Dispatch ``on_train_begin`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_train_begin(trainer)

    def on_epoch_begin(self, epoch: int, trainer: Trainer) -> None:
        """Dispatch ``on_epoch_begin`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_epoch_begin(epoch, trainer)

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Dispatch ``on_epoch_end`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_epoch_end(epoch, stats, trainer)

    def on_train_end(self, result: TrainerResult, trainer: Trainer) -> None:
        """Dispatch ``on_train_end`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_train_end(result, trainer)


class LambdaCallback(Callback):
    """Ad-hoc hook: ``LambdaCallback(on_epoch_end=lambda e, s, t: ...)``."""

    def __init__(
        self,
        on_epoch_begin: Optional[Callable[[int, Trainer], None]] = None,
        on_epoch_end: Optional[
            Callable[[int, TrainEpoch, Trainer], None]
        ] = None,
    ):
        self._begin = on_epoch_begin
        self._end = on_epoch_end

    def on_epoch_begin(self, epoch: int, trainer: Trainer) -> None:
        """Invoke the wrapped ``on_epoch_begin`` function, if any."""
        if self._begin is not None:
            self._begin(epoch, trainer)

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Invoke the wrapped ``on_epoch_end`` function, if any."""
        if self._end is not None:
            self._end(epoch, stats, trainer)


class LRSchedule(Callback):
    """Anneal the learning rate between epochs.

    The schedule function maps ``(epoch, base_lr) -> lr``; the base rate
    is the trainer's configured ``learning_rate`` captured at train
    start.  Use the factories:

    >>> LRSchedule.step(drop=0.5, every=5).lr_at(5, 0.1)
    0.05
    >>> round(LRSchedule.exponential(gamma=0.9).lr_at(2, 0.1), 4)
    0.081
    >>> round(LRSchedule.warmup(3).lr_at(0, 0.3), 4)
    0.1
    """

    def __init__(self, schedule: Callable[[int, float], float], name: str = "custom"):
        self.schedule = schedule
        self.name = name
        self._base: Optional[float] = None

    # -- factories ------------------------------------------------------
    @classmethod
    def step(cls, drop: float = 0.5, every: int = 5) -> "LRSchedule":
        """Multiply the rate by *drop* every *every* epochs."""
        check_positive("every", every)
        check_positive("drop", drop)
        return cls(
            lambda epoch, base: base * drop ** (epoch // every),
            name=f"step(drop={drop}, every={every})",
        )

    @classmethod
    def exponential(cls, gamma: float = 0.95) -> "LRSchedule":
        """Multiply the rate by *gamma* after each epoch."""
        check_positive("gamma", gamma)
        return cls(
            lambda epoch, base: base * gamma**epoch,
            name=f"exponential(gamma={gamma})",
        )

    @classmethod
    def warmup(
        cls, epochs: int, after: Optional["LRSchedule"] = None
    ) -> "LRSchedule":
        """Ramp linearly from ``base/epochs`` to ``base`` over *epochs*,
        then hold (or hand off to *after*, shifted by the warmup)."""
        check_positive("epochs", epochs)

        def schedule(epoch: int, base: float) -> float:
            if epoch < epochs:
                return base * (epoch + 1) / epochs
            if after is not None:
                return after.schedule(epoch - epochs, base)
            return base

        suffix = f", then {after.name}" if after is not None else ""
        return cls(schedule, name=f"warmup({epochs}{suffix})")

    # -- hooks ----------------------------------------------------------
    def lr_at(self, epoch: int, base: float) -> float:
        """The rate this schedule prescribes for *epoch* given *base*."""
        return float(self.schedule(epoch, base))

    def on_train_begin(self, trainer: Trainer) -> None:
        """Capture the base rate the whole schedule derives from."""
        self._base = trainer.learning_rate

    def on_epoch_begin(self, epoch: int, trainer: Trainer) -> None:
        """Set the trainer's step size for the coming epoch."""
        base = self._base if self._base is not None else trainer.learning_rate
        trainer.set_learning_rate(self.lr_at(epoch, base))


class EvalCallback(Callback):
    """Evaluate held-out ranking quality every *every* epochs.

    Results are appended to ``trainer.evals`` (and surface on the
    :class:`~repro.train.base.TrainerResult`); the latest lands in
    ``trainer.last_eval`` for monitors.  ``sample_users`` evaluates a
    fixed seeded subsample — the same users every epoch, so the curve is
    comparable across epochs — which keeps per-epoch evaluation cheap on
    large user sets.

    Examples
    --------
    >>> from repro import (SyntheticConfig, TaxonomyFactorModel,
    ...                    generate_dataset, train_test_split)
    >>> from repro.train import SerialTrainer
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> split = train_test_split(data.log, mu=0.5, seed=0)
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=4, epochs=2, seed=0)
    >>> result = SerialTrainer(
    ...     model, callbacks=[EvalCallback(split, every=2)]
    ... ).train(split.train)
    >>> len(result.evals)
    1
    """

    def __init__(
        self,
        split: Any,
        every: int = 1,
        first_t: int = 1,
        k: Optional[int] = None,
        sample_users: Optional[int] = None,
        seed: int = 0,
        verbose: bool = False,
    ):
        check_positive("every", every)
        self.split = split
        self.every = int(every)
        self.first_t = int(first_t)
        self.k = k
        self.sample_users = sample_users
        self.seed = seed
        self.verbose = verbose
        self.history: List[Tuple[int, Any]] = []
        self._users = None  # the fixed evaluation subset, drawn once

    def on_train_begin(self, trainer: Trainer) -> None:
        """Reset the per-run evaluation history."""
        self.history = []  # reusable across runs, like the other callbacks

    def _eval_users(self):
        """The seeded user subsample — identical every epoch."""
        if self._users is None:
            from repro.eval.protocol import _sample_users

            self._users = _sample_users(
                self.split.test_users(), self.sample_users, self.seed
            )
        return self._users

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Score the held-out split every *every* epochs."""
        if (epoch + 1) % self.every:
            return
        from repro.eval.protocol import evaluate_model, evaluate_topk

        model = trainer.eval_model()
        users = self._eval_users()
        result = evaluate_model(
            model, self.split, first_t=self.first_t, users=users
        )
        stats.extras["auc"] = result.auc
        if self.k is not None:
            topk = evaluate_topk(model, self.split, k=self.k, users=users)
            stats.extras[f"hit_rate@{self.k}"] = topk.hit_rate
        self.history.append((epoch, result))
        trainer.evals.append((epoch, result))
        trainer.last_eval = result
        if self.verbose:
            logger.info("eval @ epoch %d: AUC=%.4f", epoch, result.auc)


class EarlyStopping(Callback):
    """Stop training when the monitored quantity plateaus.

    ``monitor="loss"`` watches the epoch training loss (minimized);
    ``monitor="auc"`` watches ``trainer.last_eval.auc`` (maximized) and
    therefore requires an :class:`EvalCallback` earlier in the list.  An
    improvement must beat the best seen value by more than *min_delta*;
    after *patience* consecutive **observations** without one, the loop
    stops.  Observations are epochs for ``"loss"`` and fresh evaluations
    for ``"auc"`` — epochs an ``EvalCallback(every=N)`` skips don't count
    against patience (the stale value is not re-judged).

    Examples
    --------
    A ridiculous ``min_delta`` makes every epoch count as a plateau, so
    a 10-epoch budget stops after ``1 + patience`` epochs:

    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> from repro.train import SerialTrainer
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=4, epochs=10, seed=0)
    >>> stopper = EarlyStopping(monitor="loss", patience=2, min_delta=1e9)
    >>> result = SerialTrainer(model, callbacks=[stopper]).train(data.log)
    >>> (result.stopped_early, result.epochs_run)
    (True, 3)
    """

    def __init__(
        self,
        monitor: str = "loss",
        patience: int = 3,
        min_delta: float = 0.0,
    ):
        if monitor not in ("loss", "auc"):
            raise ValueError(
                f"monitor must be 'loss' or 'auc', got {monitor!r}"
            )
        check_positive("patience", patience)
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.best_epoch: Optional[int] = None
        self.stopped_at: Optional[int] = None
        self._since_best = 0
        self._seen_evals = 0

    def on_train_begin(self, trainer: Trainer) -> None:
        """Reset the plateau tracking for a fresh run."""
        # Callback instances are reusable across runs (quickstart trains
        # TF and MF with one list); a fresh run starts from scratch.
        self.best = None
        self.best_epoch = None
        self.stopped_at = None
        self._since_best = 0
        self._seen_evals = 0

    def _value(self, stats: TrainEpoch, trainer: Trainer) -> Optional[float]:
        if self.monitor == "loss":
            return stats.loss
        if trainer.last_eval is None or len(trainer.evals) == self._seen_evals:
            return None  # no evaluation ran this epoch — nothing to judge
        self._seen_evals = len(trainer.evals)
        return float(trainer.last_eval.auc)

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Judge this epoch's observation; request a stop on plateau."""
        value = self._value(stats, trainer)
        if value is None or math.isnan(value):
            return
        if self.best is None:
            improved = True
        elif self.monitor == "loss":
            improved = value < self.best - self.min_delta
        else:
            improved = value > self.best + self.min_delta
        if improved:
            self.best = value
            self.best_epoch = epoch
            self._since_best = 0
        else:
            self._since_best += 1
            if self._since_best >= self.patience:
                self.stopped_at = epoch
                trainer.stop_training = True


class CheckpointCallback(Callback):
    """Write versioned model bundles during training.

    Every *every* epochs the trainer's current model is saved through a
    :class:`~repro.streaming.swap.CheckpointStore` (``v0001``, ``v0002``,
    ... + ``LATEST``), carrying the epoch and loss in the manifest.  With
    ``monitor="loss"`` only improving epochs are checkpointed, so
    ``store.load()`` always returns the best model so far.

    Examples
    --------
    >>> import tempfile
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> from repro.train import SerialTrainer
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=4, epochs=2, seed=0)
    >>> tmp = tempfile.TemporaryDirectory()
    >>> saver = CheckpointCallback(tmp.name, every=1)
    >>> _ = SerialTrainer(model, callbacks=[saver]).train(data.log)
    >>> saver.versions
    [1, 2]
    >>> tmp.cleanup()
    """

    def __init__(
        self,
        store: Union[str, Path, Any],
        every: int = 1,
        monitor: Optional[str] = None,
        keep: Optional[int] = None,
    ):
        from repro.streaming.swap import CheckpointStore

        check_positive("every", every)
        if monitor not in (None, "loss"):
            raise ValueError(f"monitor must be None or 'loss', got {monitor!r}")
        if not isinstance(store, CheckpointStore):
            store = CheckpointStore(store, keep=keep)
        self.store = store
        self.every = int(every)
        self.monitor = monitor
        self.versions: List[int] = []
        self._best = float("inf")

    def on_train_begin(self, trainer: Trainer) -> None:
        """Forget the previous run's best loss and saved versions."""
        self._best = float("inf")  # don't carry a previous run's best
        self.versions = []

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Checkpoint the current model when the cadence/monitor allow."""
        if (epoch + 1) % self.every:
            return
        if self.monitor == "loss":
            if not (stats.loss < self._best) or math.isnan(stats.loss):
                return
            self._best = stats.loss
        extra = {"epoch": epoch, "backend": stats.backend}
        if not math.isnan(stats.loss):
            extra["loss"] = float(stats.loss)
        version = self.store.save(trainer.eval_model(), extra=extra)
        self.versions.append(version)


class ProgressCallback(Callback):
    """Log one line per epoch (the CLI's training progress).

    The default *printer* routes through the library logger (INFO on
    the ``repro`` namespace — visible once the application calls
    :func:`repro.utils.logging.enable_console_logging`, as the CLI
    does); pass an explicit callable to write somewhere else.
    """

    def __init__(self, printer: Optional[Callable[[str], None]] = None):
        self.printer = printer if printer is not None else logger.info

    def on_epoch_end(
        self, epoch: int, stats: TrainEpoch, trainer: Trainer
    ) -> None:
        """Print the epoch's one-line summary."""
        extra = ""
        if "auc" in stats.extras and not np.isnan(stats.extras["auc"]):
            extra = f" auc={stats.extras['auc']:.4f}"
        self.printer(f"  {stats}{extra}")
