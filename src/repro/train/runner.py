"""Config-driven experiment execution: specs in, comparison tables out.

:class:`ExperimentRunner` turns a declarative
:class:`~repro.utils.config.ExperimentSpec` into a full run — build or
load the dataset, split it with the paper's protocol, construct the model
variant(s), fit each through the selected
:class:`~repro.train.base.Trainer` backend, evaluate with the paper's
protocol, and optionally persist :class:`~repro.serving.bundle.ModelBundle`
artifacts.  ``compare`` variants share the *same* data and split, so the
printed table is an apples-to-apples comparison (the paper's TF-vs-MF
tables are one spec with ``compare=["mf"]``).

:func:`sweep` expands a ``{dotted.path: [values...]}`` grid over a base
spec and runs every cell — hierarchical-regularization ablations,
K-sweeps, backend shootouts — all without writing a line of code.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.mf_model import MFModel, bpr_mf_model, fpmc_model
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.split import TrainTestSplit, train_test_split
from repro.data.synthetic import generate_dataset
from repro.data.transactions import TransactionLog
from repro.eval.protocol import (
    evaluate_cold_start,
    evaluate_model,
    evaluate_topk,
)
from repro.taxonomy.tree import Taxonomy
from repro.train.base import Trainer, TrainerResult
from repro.train.callbacks import (
    Callback,
    CheckpointCallback,
    EarlyStopping,
    EvalCallback,
    LRSchedule,
    ProgressCallback,
)
from repro.train.online import OnlineTrainer
from repro.train.serial import SerialTrainer
from repro.train.threaded import ThreadedTrainer
from repro.utils.config import (
    ExperimentSpec,
    TrainerSpec,
    apply_overrides,
)
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Model-kind constructors; each takes ``(taxonomy, config)``.
_MODEL_BUILDERS: Dict[str, Callable[..., TaxonomyFactorModel]] = {
    "tf": TaxonomyFactorModel,
    "mf": MFModel,
    "fpmc": fpmc_model,
    "bpr-mf": bpr_mf_model,
}


@dataclass
class ExperimentResult:
    """One trained-and-evaluated variant of an experiment."""

    variant: str
    metrics: Dict[str, float]
    train_seconds: float
    epochs_run: int
    backend: str
    bundle_path: Optional[str] = None
    trainer_result: Optional[TrainerResult] = field(default=None, repr=False)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary of this variant's run."""
        return {
            "variant": self.variant,
            "metrics": dict(self.metrics),
            "train_seconds": self.train_seconds,
            "epochs_run": self.epochs_run,
            "backend": self.backend,
            "bundle_path": self.bundle_path,
        }


@dataclass
class ExperimentReport:
    """Everything one :meth:`ExperimentRunner.run` produced."""

    spec: ExperimentSpec
    results: List[ExperimentResult]

    @property
    def primary(self) -> ExperimentResult:
        """The spec's main variant (``compare`` entries follow it)."""
        return self.results[0]

    def table(self) -> str:
        """Fixed-width comparison table (the Table-2-style printout)."""
        k = self.spec.eval.k
        headers = [
            "model", "AUC", "meanRank",
            f"prec@{k}", f"recall@{k}", f"hitRate@{k}", "epochs", "train_s",
        ]
        rows = []
        for result in self.results:
            m = result.metrics
            rows.append([
                result.variant,
                _fmt(m.get("auc")),
                _fmt(m.get("mean_rank"), "{:.1f}"),
                _fmt(m.get(f"precision@{k}")),
                _fmt(m.get(f"recall@{k}")),
                _fmt(m.get(f"hit_rate@{k}")),
                str(result.epochs_run),
                f"{result.train_seconds:.2f}",
            ])
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows))
            for c in range(len(headers))
        ]
        lines = [f"== {self.spec.name} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable report: the spec plus every result."""
        from repro.utils.config import spec_to_dict

        return {
            "spec": spec_to_dict(self.spec),
            "results": [r.as_dict() for r in self.results],
        }


def _fmt(value: Optional[float], pattern: str = "{:.4f}") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "nan"
    return pattern.format(value)


class ExperimentRunner:
    """Execute one :class:`~repro.utils.config.ExperimentSpec`.

    Parameters
    ----------
    spec:
        The experiment to run.
    callbacks:
        Extra :class:`~repro.train.callbacks.Callback` objects handed to
        every variant's trainer (on top of the ones the spec's
        ``trainer`` section configures).
    """

    def __init__(
        self, spec: ExperimentSpec, callbacks: Sequence[Callback] = ()
    ):
        self.spec = spec
        self.callbacks = list(callbacks)
        self._data: Optional[Tuple[Taxonomy, TransactionLog]] = None
        self._split: Optional[TrainTestSplit] = None

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def load_data(self) -> Tuple[Taxonomy, TransactionLog]:
        """The experiment's taxonomy and full purchase log (memoized)."""
        if self._data is None:
            data_spec = self.spec.data
            if data_spec.source == "synthetic":
                data = generate_dataset(data_spec.synthetic)
                self._data = (data.taxonomy, data.log)
            else:
                from repro.taxonomy.io import load_taxonomy

                directory = Path(data_spec.data_dir)
                taxonomy_path = directory / "taxonomy.json"
                log_path = directory / "transactions.jsonl"
                if not taxonomy_path.exists() or not log_path.exists():
                    raise FileNotFoundError(
                        f"missing taxonomy.json / transactions.jsonl in "
                        f"{directory}"
                    )
                self._data = (
                    load_taxonomy(taxonomy_path),
                    TransactionLog.load(log_path),
                )
        return self._data

    def split(self) -> TrainTestSplit:
        """The paper-protocol temporal split (memoized)."""
        if self._split is None:
            _, log = self.load_data()
            data_spec = self.spec.data
            self._split = train_test_split(
                log,
                mu=data_spec.mu,
                sigma=data_spec.sigma,
                seed=data_spec.split_seed,
            )
        return self._split

    def build_model(self, variant: str) -> TaxonomyFactorModel:
        """Construct one model variant against the shared taxonomy.

        ``mf``/``bpr-mf``/``fpmc`` force ``taxonomy_levels=1`` and drop
        sibling training (meaningless without a tree), mirroring the
        benchmark harness's baseline convention.  The per-sample regimes
        (threaded backend, serial ``update="sample"``) also drop sibling
        training — the paper's scaling experiment never mixes it in, and
        the engine rejects it — so flipping a spec's backend never
        requires editing its ``[train]`` section.
        """
        taxonomy, _ = self.load_data()
        builder = _MODEL_BUILDERS.get(variant)
        if builder is None:
            raise ValueError(
                f"unknown model kind {variant!r} "
                f"(valid: {sorted(_MODEL_BUILDERS)})"
            )
        config = self.spec.train
        trainer_spec = self.spec.trainer
        per_sample = trainer_spec.backend == "threaded" or (
            trainer_spec.backend == "serial" and trainer_spec.update == "sample"
        )
        if variant != "tf" or per_sample:
            return builder(taxonomy, config, sibling_ratio=0.0)
        return builder(taxonomy, config)

    def build_trainer(
        self,
        model: TaxonomyFactorModel,
        extra_callbacks: Sequence[Callback] = (),
        variant: Optional[str] = None,
    ) -> Trainer:
        """The spec's backend wrapped around *model*, callbacks wired."""
        trainer_spec = self.spec.trainer
        callbacks = (
            self._spec_callbacks(trainer_spec, variant)
            + self.callbacks
            + list(extra_callbacks)
        )
        if trainer_spec.backend == "serial":
            return SerialTrainer(
                model, callbacks=callbacks, update=trainer_spec.update
            )
        if trainer_spec.backend == "threaded":
            return ThreadedTrainer(
                model,
                callbacks=callbacks,
                n_workers=trainer_spec.n_workers,
                use_cache=trainer_spec.use_cache,
                cache_threshold=trainer_spec.cache_threshold,
            )
        return OnlineTrainer(
            model,
            callbacks=callbacks,
            steps=trainer_spec.online_steps,
            batch_size=trainer_spec.online_batch_size,
            fold_in_steps=trainer_spec.fold_in_steps,
        )

    def _spec_callbacks(
        self, trainer_spec: TrainerSpec, variant: Optional[str] = None
    ) -> List[Callback]:
        callbacks: List[Callback] = []
        if trainer_spec.lr_schedule == "step":
            callbacks.append(
                LRSchedule.step(
                    drop=trainer_spec.lr_decay,
                    every=trainer_spec.lr_step_every,
                )
            )
        elif trainer_spec.lr_schedule == "exponential":
            callbacks.append(LRSchedule.exponential(gamma=trainer_spec.lr_decay))
        elif trainer_spec.lr_schedule == "warmup":
            callbacks.append(LRSchedule.warmup(trainer_spec.lr_warmup_epochs))
        if trainer_spec.eval_every > 0:
            callbacks.append(
                EvalCallback(
                    self.split(),
                    every=trainer_spec.eval_every,
                    first_t=self.spec.eval.first_t,
                    sample_users=trainer_spec.eval_sample_users,
                )
            )
        if trainer_spec.early_stopping:
            callbacks.append(
                EarlyStopping(
                    monitor="loss",
                    patience=trainer_spec.patience,
                    min_delta=trainer_spec.min_delta,
                )
            )
        if trainer_spec.checkpoint_dir:
            # With comparison variants, each gets its own store — one
            # shared directory would interleave versions and leave LATEST
            # pointing at whichever variant trained last.
            directory = Path(trainer_spec.checkpoint_dir)
            if variant is not None and len(self.spec.variants()) > 1:
                directory = directory / variant
            callbacks.append(
                CheckpointCallback(
                    directory, every=trainer_spec.checkpoint_every
                )
            )
        return callbacks

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, verbose: bool = False, evaluate: bool = True
    ) -> ExperimentReport:
        """Train every variant; returns the report.

        ``evaluate=False`` skips the final paper-protocol evaluation (the
        most expensive non-training step) — the CLI ``train`` command
        uses this, since it only persists the bundle.
        """
        spec = self.spec
        split = self.split()
        results: List[ExperimentResult] = []
        many = len(spec.variants()) > 1
        for variant in spec.variants():
            if verbose:
                logger.info(
                    "[%s] training %s (%s backend)",
                    spec.name,
                    variant,
                    spec.trainer.backend,
                )
            model = self.build_model(variant)
            extra = [ProgressCallback()] if verbose else []
            fit_started = time.perf_counter()
            trainer_result = self._fit_variant(model, split, extra, variant)
            # Wall time of the whole fit — for the online backend that
            # includes the warm offline prefix, which the streaming
            # TrainerResult alone does not count.
            fit_seconds = time.perf_counter() - fit_started
            metrics = self._evaluate(model, split) if evaluate else {}
            bundle_path = None
            if spec.output:
                bundle_path = str(
                    Path(spec.output) / variant if many else Path(spec.output)
                )
                self._save_bundle(model, variant, bundle_path)
            results.append(
                ExperimentResult(
                    variant=variant,
                    metrics=metrics,
                    train_seconds=fit_seconds,
                    epochs_run=trainer_result.epochs_run,
                    backend=trainer_result.backend,
                    bundle_path=bundle_path,
                    trainer_result=trainer_result,
                )
            )
        return ExperimentReport(spec=spec, results=results)

    def _fit_variant(
        self,
        model: TaxonomyFactorModel,
        split: TrainTestSplit,
        extra_callbacks: Sequence[Callback],
        variant: Optional[str] = None,
    ) -> TrainerResult:
        trainer_spec = self.spec.trainer
        if trainer_spec.backend != "online":
            trainer = self.build_trainer(model, extra_callbacks, variant)
            return trainer.train(split.train)
        # Online backend: fit the warm per-user prefix offline (the
        # "last full retrain"), then stream the remainder through the
        # incremental updater — the production pattern the paper motivates.
        # Spec callbacks attach to the streaming phase only; the warm fit
        # stands in for a previous run's artifact, not this experiment's
        # training loop (run() still bills its wall time to train_s).
        warm, stream = warm_stream_split(
            split.train, trainer_spec.warm_fraction
        )
        SerialTrainer(model).train(warm)
        trainer = self.build_trainer(model, extra_callbacks, variant)
        return trainer.train(stream)

    def _evaluate(
        self, model: TaxonomyFactorModel, split: TrainTestSplit
    ) -> Dict[str, float]:
        eval_spec = self.spec.eval
        result = evaluate_model(
            model,
            split,
            first_t=eval_spec.first_t,
            sample_users=eval_spec.sample_users,
        )
        topk = evaluate_topk(model, split, k=eval_spec.k)
        metrics = {
            "auc": result.auc,
            "mean_rank": result.mean_rank,
            "n_users": float(result.n_users),
            f"precision@{eval_spec.k}": topk.precision,
            f"recall@{eval_spec.k}": topk.recall,
            f"hit_rate@{eval_spec.k}": topk.hit_rate,
        }
        if eval_spec.cold_start:
            cold = evaluate_cold_start(model, split)
            metrics["cold_start_score"] = cold.score
            metrics["cold_start_events"] = float(cold.n_events)
        return metrics

    def _save_bundle(
        self, model: TaxonomyFactorModel, variant: str, path: str
    ) -> None:
        from repro.serving.bundle import ModelBundle

        data_spec = self.spec.data
        ModelBundle(
            model,
            extra={
                "mu": data_spec.mu,
                "split_seed": data_spec.split_seed,
                "experiment": self.spec.name,
                "variant": variant,
            },
        ).save(path)


def warm_stream_split(
    train: TransactionLog, warm_fraction: float
) -> Tuple[TransactionLog, TransactionLog]:
    """Split a training log into a warm prefix and a streamed remainder.

    Each user keeps the first ``ceil(warm_fraction * len)`` transactions
    (at least one, so every user is warm-startable) for the offline fit;
    the rest arrive later as the online trainer's event stream.  Both
    halves adopt the source log's already-validated baskets through the
    :meth:`~repro.data.transactions.TransactionLog.from_baskets` trusted
    fast path — no copy, no re-validation.
    """
    warm_rows: List[List] = []
    stream_rows: List[List] = []
    for user in range(train.n_users):
        txns = train.user_transactions(user)
        keep = max(1, math.ceil(warm_fraction * len(txns))) if txns else 0
        warm_rows.append(txns[:keep])
        stream_rows.append(txns[keep:])
    return (
        TransactionLog.from_baskets(warm_rows, n_items=train.n_items),
        TransactionLog.from_baskets(stream_rows, n_items=train.n_items),
    )


def run_experiment(
    spec: ExperimentSpec,
    callbacks: Sequence[Callback] = (),
    verbose: bool = False,
) -> ExperimentReport:
    """Convenience: ``ExperimentRunner(spec, callbacks).run(verbose)``.

    Examples
    --------
    >>> from repro import (DataSpec, ExperimentSpec, SyntheticConfig,
    ...                    TrainConfig)
    >>> spec = ExperimentSpec(
    ...     name="doc-demo",
    ...     model="tf",
    ...     data=DataSpec(synthetic=SyntheticConfig(n_users=40, seed=0)),
    ...     train=TrainConfig(factors=4, epochs=1, seed=0),
    ... )
    >>> report = run_experiment(spec)
    >>> report.primary.variant
    'tf'
    >>> sorted(report.primary.metrics)[:2]
    ['auc', 'hit_rate@10']
    """
    return ExperimentRunner(spec, callbacks=callbacks).run(verbose=verbose)


@dataclass
class SweepCell:
    """One grid point of a sweep: the overrides and its report."""

    overrides: Dict[str, Any]
    report: ExperimentReport


def _cell_dirname(index: int, overrides: Dict[str, Any]) -> str:
    """A filesystem-safe per-cell bundle directory name."""
    import re

    suffix = "_".join(f"{k}={v}" for k, v in overrides.items())
    suffix = re.sub(r"[^A-Za-z0-9._=-]+", "-", suffix)[:80].strip("-_")
    return f"cell-{index:03d}" + (f"-{suffix}" if suffix else "")


def sweep(
    spec: ExperimentSpec,
    grid: Dict[str, Sequence[Any]],
    callbacks: Sequence[Callback] = (),
    verbose: bool = False,
) -> List[SweepCell]:
    """Run *spec* once per cell of the ``{dotted.path: values}`` grid.

    >>> cells = sweep(spec, {"train.factors": [8, 16],
    ...                      "train.reg": [0.01, 0.1]})   # doctest: +SKIP

    expands to 4 runs.  Every cell re-applies its overrides to the base
    spec via :func:`~repro.utils.config.apply_overrides`, so any spec
    field — model kind, backend, hyper-parameter — can be swept.
    """
    import json as _json

    from repro.eval.model_selection import expand_grid
    from repro.utils.config import spec_to_dict

    cells: List[SweepCell] = []
    # Cells whose data section is identical share one loaded dataset and
    # split — the same guarantee `compare` variants get within a run —
    # so a hyper-parameter grid never re-parses or regenerates the data.
    data_cache: Dict[str, Tuple[Any, Any]] = {}
    for index, overrides in enumerate(expand_grid(grid)):
        cell_spec = apply_overrides(spec, overrides) if overrides else spec
        if overrides:
            suffix = ",".join(f"{k}={v}" for k, v in overrides.items())
            cell_spec.name = f"{spec.name}[{suffix}]"
        if cell_spec.output and len(grid):
            # Every cell gets its own bundle directory — one shared
            # `output` would let later cells atomically overwrite earlier
            # cells' models while their reports still point at it.
            cell_spec.output = str(
                Path(cell_spec.output) / _cell_dirname(index, overrides)
            )
        if verbose and overrides:
            logger.info("sweep cell: %s", overrides)
        runner = ExperimentRunner(cell_spec, callbacks=callbacks)
        data_key = _json.dumps(spec_to_dict(cell_spec)["data"], sort_keys=True)
        cached = data_cache.get(data_key)
        if cached is not None:
            runner._data, runner._split = cached
        report = runner.run(verbose=verbose)
        data_cache.setdefault(data_key, (runner._data, runner._split))
        cells.append(SweepCell(overrides=dict(overrides), report=report))
    return cells


def sweep_table(cells: Sequence[SweepCell], k: Optional[int] = None) -> str:
    """Fixed-width summary of a sweep's primary-variant metrics.

    Each row reads its hit-rate at the *cell's own* ``eval.k`` (cells can
    sweep ``eval.k`` itself); *k* only labels the column header and
    defaults to the first cell's depth.
    """
    if k is None and cells:
        k = cells[0].report.spec.eval.k
    headers = ["overrides", "model", "AUC", f"hitRate@{k}", "train_s"]
    rows = []
    for cell in cells:
        primary = cell.report.primary
        cell_k = cell.report.spec.eval.k
        rows.append([
            ",".join(f"{key}={value}" for key, value in cell.overrides.items())
            or "(base)",
            primary.variant,
            _fmt(primary.metrics.get("auc")),
            _fmt(primary.metrics.get(f"hit_rate@{cell_k}")),
            f"{primary.train_seconds:.2f}",
        ])
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
