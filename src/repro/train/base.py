"""The unified training front door: one epoch loop for every backend.

The paper runs the same SGD objective (Eq. 6) in several regimes —
full-batch offline training (Sec. 4), lock-based multi-threaded training
(Sec. 6.1), and incremental online updates between retrains.  Historically
each regime had its own entry point (``model.fit``, ``ThreadedSGDTrainer``,
``OnlineUpdater``) with duplicated loop logic and ad-hoc seeding.  This
module defines the shared contract:

* :class:`Trainer` — the abstract epoch loop.  Subclasses implement
  ``_setup(log)`` and ``_run_epoch(epoch)``; the base class owns epoch
  iteration, the per-epoch seed policy
  (:func:`repro.utils.rng.epoch_seed`), callback dispatch, learning-rate
  plumbing, and early-stop handling.
* :class:`TrainEpoch` — the backend-agnostic per-epoch record every
  callback receives (serial :class:`~repro.core.sgd.EpochStats`, threaded
  :class:`~repro.parallel.trainer.ThreadedEpochStats`, and streaming
  deltas are all normalized into it; the original record rides along as
  ``raw``).
* :class:`TrainerResult` — what ``train()`` returns: the trained model,
  the epoch history, and any evaluations callbacks recorded.

Concrete backends: :class:`~repro.train.serial.SerialTrainer`,
:class:`~repro.train.threaded.ThreadedTrainer`,
:class:`~repro.train.online.OnlineTrainer`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.data.transactions import TransactionLog
from repro.utils.config import TrainConfig
from repro.utils.rng import epoch_seed
from repro.utils.validation import check_positive


@dataclass
class TrainEpoch:
    """One epoch of training, normalized across backends.

    ``loss`` is the mean BPR negative log-likelihood over the epoch's
    examples (``nan`` when a backend cannot attribute one).  ``extras``
    carries backend-specific diagnostics (sibling loss, lock contention,
    streamed-event counts, ...); ``raw`` is the backend's native stats
    object.
    """

    epoch: int
    loss: float
    n_examples: int
    seconds: float
    learning_rate: float
    backend: str
    extras: Dict[str, float] = field(default_factory=dict)
    raw: Any = field(default=None, repr=False)

    def __str__(self) -> str:
        return (
            f"epoch {self.epoch} [{self.backend}]: loss={self.loss:.4f} "
            f"examples={self.n_examples} lr={self.learning_rate:.4g} "
            f"({self.seconds:.2f}s)"
        )


@dataclass
class TrainerResult:
    """Outcome of one :meth:`Trainer.train` call."""

    model: Any
    history: List[TrainEpoch]
    seconds: float
    backend: str
    stopped_early: bool = False
    #: ``(epoch, EvalResult)`` pairs recorded by an ``EvalCallback``.
    evals: List[Tuple[int, Any]] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """Epochs actually executed (early stopping can cut the run short)."""
        return len(self.history)

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch (``nan`` for empty runs)."""
        return self.history[-1].loss if self.history else float("nan")

    def __str__(self) -> str:
        return (
            f"TrainerResult(backend={self.backend}, "
            f"epochs={self.epochs_run}, loss={self.final_loss:.4f}, "
            f"{self.seconds:.2f}s, stopped_early={self.stopped_early})"
        )


class Trainer(abc.ABC):
    """Abstract base of every training backend.

    Parameters
    ----------
    model:
        A :class:`~repro.core.tf_model.TaxonomyFactorModel` (or subclass).
        The trainer mutates it in place — after ``train()`` returns, the
        model is fitted exactly as if the backend's legacy entry point had
        been called.
    callbacks:
        :class:`~repro.train.callbacks.Callback` objects invoked around
        every epoch (more can be passed per ``train()`` call).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the base
        loop records per-epoch telemetry into it
        (``repro_train_epochs_total``, ``repro_train_examples_total``,
        the ``repro_train_epoch_seconds`` histogram, and the
        ``repro_train_loss`` gauge, all labeled by backend).  A private
        registry is created when omitted, so ``trainer.registry`` always
        exports epoch throughput.

    The contract subclasses implement:

    * ``_setup(log)`` — validate the log, initialize factors/engines;
    * ``_run_epoch(epoch)`` — run one epoch and return a
      :class:`TrainEpoch`; the per-epoch seed is ``self.epoch_seed(epoch)``
      and the step size to honour is ``self.learning_rate``.

    Examples
    --------
    Every backend runs through the same loop; the serial one:

    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> from repro.train import SerialTrainer
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=4, epochs=2, seed=0)
    >>> result = SerialTrainer(model).train(data.log)
    >>> len(result.history) == result.epochs_run == 2
    True
    """

    #: Backend identifier stamped on every :class:`TrainEpoch`.
    backend: str = "abstract"
    #: Default epoch count when neither the call nor the config decides
    #: (``None`` → ``config.epochs``; the online backend pins this to 1).
    default_epochs: Optional[int] = None

    def __init__(
        self, model: Any, callbacks: Sequence[Any] = (), registry: Any = None
    ):
        from repro.obs.metrics import MetricsRegistry

        self.model = model
        self.callbacks = list(callbacks)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.history: List[TrainEpoch] = []
        #: The rate every run starts from (and schedules re-base on);
        #: backends with a constructor override set this too.
        self.base_learning_rate = float(model.config.learning_rate)
        self.learning_rate = self.base_learning_rate
        self.stop_training = False
        #: Evaluations recorded by callbacks: ``(epoch, EvalResult)``.
        self.evals: List[Tuple[int, Any]] = []
        #: The most recent evaluation (set by ``EvalCallback``).
        self.last_eval: Any = None

    # ------------------------------------------------------------------
    @property
    def config(self) -> TrainConfig:
        """The wrapped model's training hyper-parameters."""
        return self.model.config

    @property
    def seed(self) -> Optional[int]:
        """The master seed every per-epoch stream derives from."""
        return self.config.seed

    def epoch_seed(self, epoch: int) -> Optional[int]:
        """The library-wide per-epoch seed (see :func:`repro.utils.rng.epoch_seed`)."""
        return epoch_seed(self.seed, epoch)

    def set_learning_rate(self, learning_rate: float) -> None:
        """Set the step size the next epoch will train with."""
        check_positive("learning_rate", learning_rate)
        self.learning_rate = float(learning_rate)

    def eval_model(self) -> Any:
        """The model evaluation callbacks should score mid-training.

        The offline backends train ``self.model`` in place; the online
        backend overrides this to expose its working copy.
        """
        return self.model

    # ------------------------------------------------------------------
    def train(
        self,
        log: TransactionLog,
        epochs: Optional[int] = None,
        callbacks: Sequence[Any] = (),
    ) -> TrainerResult:
        """Run the shared epoch loop over *log*.

        *epochs* defaults to ``config.epochs`` (the online backend
        defaults to a single pass).  Returns a :class:`TrainerResult`;
        the trained model is also ``self.model``, mutated in place.
        """
        from repro.train.callbacks import CallbackList

        if epochs is None:
            epochs = (
                self.default_epochs
                if self.default_epochs is not None
                else self.config.epochs
            )
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        stack = CallbackList(self.callbacks + list(callbacks))
        # Each train() call is a fresh run: _setup reinitializes the
        # factors, so the loop state resets with them (a stale history
        # would skew epoch numbering, and a schedule-annealed rate from a
        # previous run would become the new base).
        self.history = []
        self.evals = []
        self.last_eval = None
        self.learning_rate = self.base_learning_rate
        self._setup(log)
        self.stop_training = False
        stopped = False
        started = time.perf_counter()
        stack.on_train_begin(self)
        for _ in range(epochs):
            epoch = len(self.history)
            stack.on_epoch_begin(epoch, self)
            stats = self._run_epoch(epoch)
            self.history.append(stats)
            self._record_epoch_metrics(stats)
            stack.on_epoch_end(epoch, stats, self)
            if self.stop_training:
                stopped = True
                break
        self._finalize()
        result = TrainerResult(
            model=self.model,
            history=list(self.history),
            seconds=time.perf_counter() - started,
            backend=self.backend,
            stopped_early=stopped,
            evals=list(self.evals),
        )
        stack.on_train_end(result, self)
        return result

    def _record_epoch_metrics(self, stats: TrainEpoch) -> None:
        """Account one finished epoch in :attr:`registry`.

        Counters for epoch/example throughput, a histogram of epoch wall
        time, and a gauge holding the latest loss — labeled by backend so
        a serial fit and a threaded fit recorded into one shared registry
        stay separate series.
        """
        import math

        labels = {"backend": self.backend}
        self.registry.counter(
            "repro_train_epochs_total",
            help="Training epochs completed.",
            labels=labels,
        ).inc()
        self.registry.counter(
            "repro_train_examples_total",
            help="Training examples consumed across epochs.",
            labels=labels,
        ).inc(max(0, int(stats.n_examples)))
        self.registry.histogram(
            "repro_train_epoch_seconds",
            help="Wall time of one training epoch.",
            labels=labels,
        ).observe(max(0.0, float(stats.seconds)))
        if not math.isnan(stats.loss):
            self.registry.gauge(
                "repro_train_loss",
                help="Mean BPR loss of the most recent epoch.",
                labels=labels,
            ).set(float(stats.loss))

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _setup(self, log: TransactionLog) -> None:
        """Validate *log* and prepare factors/engines for epoch 0."""

    @abc.abstractmethod
    def _run_epoch(self, epoch: int) -> TrainEpoch:
        """Run one epoch with ``epoch_seed(epoch)`` and ``learning_rate``."""

    def _finalize(self) -> None:
        """Hook run after the last epoch, before the result is built."""

    def _check_universe(self, log: TransactionLog) -> None:
        if log.n_items != self.model.taxonomy.n_items:
            raise ValueError(
                f"log item universe ({log.n_items}) does not match the "
                f"taxonomy ({self.model.taxonomy.n_items})"
            )

    def _init_offline_factors(self, log: TransactionLog) -> None:
        """Fresh factors for an offline fit, exactly as the legacy
        ``model.fit`` initialized them.

        Shared by the serial and threaded backends — the documented
        1-worker bit-identity between them starts from this common
        initialization.
        """
        from repro.core.factors import FactorSet

        model, config = self.model, self.config
        model._factors = FactorSet(
            n_users=max(log.n_users, 1),
            taxonomy=model.taxonomy,
            factors=config.factors,
            levels=config.taxonomy_levels,
            with_next=config.markov_order > 0,
            init_scale=config.init_scale,
            seed=config.seed,
        )
        model._train_log = log
        model.history_ = []
