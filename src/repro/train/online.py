"""Online (streaming) training behind the unified Trainer contract.

:class:`OnlineTrainer` replays a :class:`~repro.data.transactions.
TransactionLog` as a micro-batched purchase-event stream through the
streaming subsystem's :class:`~repro.streaming.updater.OnlineUpdater`:
incremental Eq. 6 user-vector steps against the *frozen* item/taxonomy
factors of an already-fitted model, with fold-in for users the offline
run never saw.  It is the "continue training from fresh data" leg of the
unified API — one epoch is one pass over the stream (the default, and
usually the only sensible count, since each pass appends the replayed
baskets to the accumulated per-user histories).

After training, the updated factors and the accumulated history are
installed back onto the wrapped model, so ``result.model`` serves exactly
what a :class:`~repro.streaming.swap.HotSwapper` would have published.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.data.transactions import TransactionLog
from repro.streaming.events import events_from_transactions, iter_microbatches
from repro.streaming.updater import OnlineUpdater
from repro.train.base import TrainEpoch, Trainer
from repro.utils.rng import derive_seed, ensure_rng
from repro.utils.validation import check_positive


class OnlineTrainer(Trainer):
    """Stream a log of new transactions into a fitted model.

    Parameters
    ----------
    model:
        A **fitted** model (the warm start whose item/taxonomy factors
        stay frozen).
    steps:
        SGD passes per micro-batch (the per-event update budget).
    batch_size:
        Events per micro-batch.
    fold_in_steps:
        Warm-start budget for brand-new users.
    learning_rate, reg:
        Default to the model's training config.

    Examples
    --------
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> from repro.train import train_model
    >>> warm = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> result = OnlineTrainer(warm, steps=1, batch_size=64).train(data.log)
    >>> (result.epochs_run, result.backend)
    (1, 'online')
    """

    backend = "online"
    default_epochs = 1

    def __init__(
        self,
        model: Any,
        callbacks: Sequence[Any] = (),
        steps: int = 4,
        batch_size: int = 256,
        fold_in_steps: int = 100,
        learning_rate: Optional[float] = None,
        reg: Optional[float] = None,
    ):
        check_positive("batch_size", batch_size)
        super().__init__(model, callbacks)
        self.steps = int(steps)
        self.batch_size = int(batch_size)
        self.fold_in_steps = int(fold_in_steps)
        self._learning_rate_override = learning_rate
        self._reg = reg
        if learning_rate is not None:
            # Override both rates: train() resets learning_rate to the
            # base at the start of every run.
            self.base_learning_rate = float(learning_rate)
            self.learning_rate = float(learning_rate)
        self.updater: Optional[OnlineUpdater] = None
        self._stream_log: Optional[TransactionLog] = None

    # ------------------------------------------------------------------
    def eval_model(self) -> Any:
        """Mid-training evaluations score the updater's working copy."""
        return self.updater.model if self.updater is not None else self.model

    def _setup(self, log: TransactionLog) -> None:
        self._check_universe(log)
        self.model.factor_set  # raises NotFittedError for cold models
        self._stream_log = log
        self.updater = OnlineUpdater(
            self.model,
            steps=self.steps,
            learning_rate=self._learning_rate_override,
            reg=self._reg,
            fold_in_steps=self.fold_in_steps,
            seed=derive_seed(self.seed, 0),
        )

    def _run_epoch(self, epoch: int) -> TrainEpoch:
        updater = self.updater
        updater.rng = ensure_rng(self.epoch_seed(epoch))
        updater.learning_rate = self.learning_rate
        before = updater.stats
        prev_steps = before.pair_steps
        prev_loss = updater.pair_loss
        prev_events = before.events
        prev_seconds = before.seconds
        prev_new_users = before.new_users
        prev_new_items = before.new_items
        events = events_from_transactions(self._stream_log)
        for batch in iter_microbatches(events, batch_size=self.batch_size):
            updater.apply(batch)
        stats = updater.stats
        pair_steps = stats.pair_steps - prev_steps
        loss_sum = updater.pair_loss - prev_loss
        return TrainEpoch(
            epoch=epoch,
            loss=loss_sum / pair_steps if pair_steps else float("nan"),
            n_examples=pair_steps,
            seconds=stats.seconds - prev_seconds,
            learning_rate=self.learning_rate,
            backend=self.backend,
            extras={
                "events": float(stats.events - prev_events),
                "new_users": float(stats.new_users - prev_new_users),
                "new_items": float(stats.new_items - prev_new_items),
            },
            # Snapshot: the updater mutates its stats in place, and raw
            # should stay a frozen per-epoch record like other backends'.
            raw=stats.copy(),
        )

    def _finalize(self) -> None:
        """Install the updated factors + accumulated history on the model."""
        if self.updater is None:
            return
        self.model._factors = self.updater.model.factor_set.copy()
        self.model.taxonomy = self.updater.model.taxonomy
        self.model.attach_log(self.updater.history_log())
