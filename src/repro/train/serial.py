"""Single-process training: the paper's Sec. 4 offline regime.

Two update granularities behind the same :class:`~repro.train.base.Trainer`
contract:

* ``update="batch"`` (default) — the vectorized minibatch scatter-add of
  :class:`~repro.core.sgd.SGDTrainer`, the fastest offline path and the
  engine the deprecated ``model.fit(...)`` shim delegates to; supports
  every model variant (Markov term, sibling training).
* ``update="sample"`` — per-sample SGD driven through the *same*
  per-sample engine the threaded backend uses
  (:class:`~repro.parallel.trainer.ThreadedSGDEngine` with one shard,
  executed inline in the calling thread).  Because the shard boundaries,
  RNG streams, and arithmetic are identical,
  ``SerialTrainer(update="sample")`` matches
  ``ThreadedTrainer(n_workers=1)`` **bit-for-bit** — the equivalence the
  test suite pins down.  Like the paper's scaling experiment it supports
  ``markov_order=0`` / ``sibling_ratio=0`` models only.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.sgd import SGDTrainer
from repro.data.transactions import TransactionLog
from repro.parallel.trainer import ThreadedSGDEngine
from repro.train.base import TrainEpoch, Trainer
from repro.utils.rng import ensure_rng


def train_model(model: Any, log: TransactionLog, **train_kwargs) -> Any:
    """One-liner serial fit: ``SerialTrainer(model).train(log)`` → *model*.

    The drop-in replacement for the deprecated ``model.fit(log)`` chain
    (identical factors for the same seed); keyword arguments pass through
    to :meth:`~repro.train.base.Trainer.train`.

    Examples
    --------
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=2, seed=0),
    ...     data.log,
    ... )
    >>> model.recommend(user=0, k=3).shape
    (3,)
    """
    SerialTrainer(model).train(log, **train_kwargs)
    return model


class SerialTrainer(Trainer):
    """Single-threaded trainer over a model's full configuration space.

    Examples
    --------
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=4, epochs=2, seed=0)
    >>> result = SerialTrainer(model).train(data.log)
    >>> (result.epochs_run, result.backend)
    (2, 'serial')
    """

    backend = "serial"

    def __init__(
        self,
        model: Any,
        callbacks: Sequence[Any] = (),
        update: str = "batch",
    ):
        if update not in ("batch", "sample"):
            raise ValueError(
                f"update must be 'batch' or 'sample', got {update!r}"
            )
        super().__init__(model, callbacks)
        self.update = update
        self._sgd = None
        self._engine = None

    # ------------------------------------------------------------------
    def _setup(self, log: TransactionLog) -> None:
        self._check_universe(log)
        self._init_offline_factors(log)
        if self.update == "batch":
            self._sgd = SGDTrainer(self.model._factors, log, self.config)
        else:
            # The per-sample engine validates markov_order/sibling_ratio.
            self._engine = ThreadedSGDEngine(
                self.model._factors, log, self.config, n_threads=1
            )

    def _run_epoch(self, epoch: int) -> TrainEpoch:
        seed = self.epoch_seed(epoch)
        if self.update == "batch":
            self._sgd.learning_rate = self.learning_rate
            self._sgd.rng = ensure_rng(seed)
            stats = self._sgd.train(epochs=1)[-1]
            self.model.history_.append(stats)
            return TrainEpoch(
                epoch=epoch,
                loss=stats.loss,
                n_examples=stats.n_examples,
                seconds=stats.seconds,
                learning_rate=self.learning_rate,
                backend=self.backend,
                extras={
                    "sibling_loss": stats.sibling_loss,
                    "n_sibling_examples": float(stats.n_sibling_examples),
                },
                raw=stats,
            )
        self._engine.learning_rate = self.learning_rate
        stats = self._engine.train_epoch(seed=seed, inline=True)
        self.model.history_.append(stats)
        return TrainEpoch(
            epoch=epoch,
            loss=stats.loss,
            n_examples=stats.n_examples,
            seconds=stats.seconds,
            learning_rate=self.learning_rate,
            backend=f"{self.backend}-sample",
            extras={"hot_row_updates": float(stats.hot_row_updates)},
            raw=stats,
        )
