"""Multi-threaded training behind the unified Trainer contract.

:class:`ThreadedTrainer` drives the lock-based per-sample engine of paper
Sec. 6.1 (:class:`~repro.parallel.trainer.ThreadedSGDEngine` — striped row
locks, optional hot-row write-back caches) through the shared epoch loop:
same callbacks, same learning-rate plumbing, and the same per-epoch seed
policy as every other backend.  With ``n_workers=1`` it is bit-identical
to :class:`~repro.train.serial.SerialTrainer` in ``update="sample"`` mode;
with more workers the visit order interleaves, so results match the
serial trainer statistically (held-out AUC within tolerance) rather than
exactly — precisely the paper's Hogwild-adjacent trade-off.

Like the paper's scaling experiment, only ``markov_order=0`` /
``sibling_ratio=0`` configurations are supported.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.data.transactions import TransactionLog
from repro.parallel.trainer import ThreadedSGDEngine
from repro.train.base import TrainEpoch, Trainer
from repro.utils.validation import check_positive


class ThreadedTrainer(Trainer):
    """Lock-based parallel trainer (paper Sec. 6.1) for a model.

    Parameters
    ----------
    model:
        The model to fit (``markov_order=0``, ``sibling_ratio=0``).
    n_workers:
        Worker threads; each processes one shard of every epoch.
    use_cache, cache_threshold:
        Route hot internal-node rows through per-thread write-back caches
        with threshold reconciliation (the paper's ``th``).

    Examples
    --------
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0)
    >>> result = ThreadedTrainer(model, n_workers=2).train(data.log)
    >>> (result.epochs_run, result.backend)
    (1, 'threaded')
    """

    backend = "threaded"

    def __init__(
        self,
        model: Any,
        callbacks: Sequence[Any] = (),
        n_workers: int = 4,
        use_cache: bool = False,
        cache_threshold: float = 0.1,
        n_stripes: int = 4096,
    ):
        check_positive("n_workers", n_workers)
        super().__init__(model, callbacks)
        self.n_workers = int(n_workers)
        self.use_cache = bool(use_cache)
        self.cache_threshold = float(cache_threshold)
        self.n_stripes = int(n_stripes)
        self.engine: ThreadedSGDEngine = None

    # ------------------------------------------------------------------
    def _setup(self, log: TransactionLog) -> None:
        self._check_universe(log)
        self._init_offline_factors(log)
        self.engine = ThreadedSGDEngine(
            self.model._factors,
            log,
            self.config,
            n_threads=self.n_workers,
            use_cache=self.use_cache,
            cache_threshold=self.cache_threshold,
            n_stripes=self.n_stripes,
        )

    def _run_epoch(self, epoch: int) -> TrainEpoch:
        self.engine.learning_rate = self.learning_rate
        stats = self.engine.train_epoch(seed=self.epoch_seed(epoch))
        self.model.history_.append(stats)
        return TrainEpoch(
            epoch=epoch,
            loss=stats.loss,
            n_examples=stats.n_examples,
            seconds=stats.seconds,
            learning_rate=self.learning_rate,
            backend=self.backend,
            extras={
                "lock_contention_rate": stats.lock_contention_rate,
                "lock_acquisitions": float(stats.lock_acquisitions),
                "reconciliations": float(stats.reconciliations),
                "hot_row_updates": float(stats.hot_row_updates),
                "n_workers": float(self.n_workers),
            },
            raw=stats,
        )
