"""Linear projections and taxonomy-clustering diagnostics (Fig. 7e).

Fig. 7(e) is qualitative — "item factors occur close to their ancestors".
To make it testable, :func:`taxonomy_clustering_report` quantifies the
claim: the mean factor-space distance between a node and its parent should
be clearly smaller than between random node pairs, and should shrink as we
move down the tree (the paper notes offset magnitudes decrease with depth,
which is also what justifies cascaded pruning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.factors import FactorSet
from repro.taxonomy.tree import ROOT, Taxonomy
from repro.utils.rng import RngLike, ensure_rng


def pca(x: np.ndarray, n_components: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Principal component projection of the rows of *x*.

    Returns ``(projected, explained_variance_ratio)``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x must be 2-d (points × features)")
    centered = x - x.mean(axis=0)
    _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
    projected = centered @ vt[:n_components].T
    variance = singular_values**2
    ratio = variance[:n_components] / max(variance.sum(), 1e-12)
    return projected, ratio


@dataclass
class ClusteringReport:
    """Quantified version of Fig. 7(e)'s visual claim."""

    parent_child_distance: float
    random_pair_distance: float
    offset_norm_by_level: Dict[int, float]
    n_nodes: int

    @property
    def clustering_ratio(self) -> float:
        """parent-child / random-pair distance; < 1 means taxonomy
        structure is visible in factor space."""
        if self.random_pair_distance <= 0:
            return float("nan")
        return self.parent_child_distance / self.random_pair_distance


def taxonomy_clustering_report(
    factor_set: FactorSet,
    max_level: Optional[int] = None,
    n_random_pairs: int = 2000,
    seed: RngLike = 0,
) -> ClusteringReport:
    """Measure how tightly effective factors cluster around ancestors.

    Parameters
    ----------
    factor_set:
        Trained factors.
    max_level:
        Deepest taxonomy level to include (the paper plots the upper three
        levels).  Defaults to the whole tree.
    """
    taxonomy: Taxonomy = factor_set.taxonomy
    rng = ensure_rng(seed)
    if max_level is None:
        max_level = taxonomy.max_depth
    nodes = np.flatnonzero(
        (taxonomy.level >= 1) & (taxonomy.level <= max_level)
    )
    if nodes.size < 2:
        raise ValueError("need at least two non-root nodes to compare")
    effective = factor_set.effective_nodes(nodes)

    # Parent-child distances (children whose parent is not the root and
    # both endpoints are inside the level window).
    position = {int(v): k for k, v in enumerate(nodes)}
    child_rows = []
    parent_rows = []
    for k, node in enumerate(nodes):
        parent = int(taxonomy.parent[node])
        if parent != -1 and parent != ROOT and parent in position:
            child_rows.append(k)
            parent_rows.append(position[parent])
    if child_rows:
        diffs = effective[child_rows] - effective[parent_rows]
        parent_child = float(np.linalg.norm(diffs, axis=1).mean())
    else:
        parent_child = float("nan")

    left = rng.integers(0, nodes.size, size=n_random_pairs)
    right = rng.integers(0, nodes.size, size=n_random_pairs)
    keep = left != right
    random_pairs = float(
        np.linalg.norm(effective[left[keep]] - effective[right[keep]], axis=1).mean()
    )

    offset_norms: Dict[int, float] = {}
    for level in range(1, max_level + 1):
        level_nodes = taxonomy.nodes_at_level(level)
        level_nodes = level_nodes[level_nodes != taxonomy.pad_id]
        if level_nodes.size:
            offset_norms[level] = float(
                np.linalg.norm(factor_set.w[level_nodes], axis=1).mean()
            )
    return ClusteringReport(
        parent_child_distance=parent_child,
        random_pair_distance=random_pairs,
        offset_norm_by_level=offset_norms,
        n_nodes=int(nodes.size),
    )


def project_taxonomy_factors(
    factor_set: FactorSet,
    max_level: int = 3,
    method: str = "pca",
    seed: RngLike = 0,
    **tsne_kwargs,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-d projection of the upper taxonomy levels' effective factors.

    Returns ``(coordinates, node_ids, levels)`` — the data behind
    Fig. 7(e)'s colored scatter (red = level 1, green = 2, blue = 3).
    """
    taxonomy: Taxonomy = factor_set.taxonomy
    nodes = np.flatnonzero((taxonomy.level >= 1) & (taxonomy.level <= max_level))
    effective = factor_set.effective_nodes(nodes)
    if method == "pca":
        coords, _ = pca(effective, n_components=2)
    elif method == "tsne":
        from repro.viz.tsne import tsne

        coords = tsne(effective, n_components=2, seed=seed, **tsne_kwargs)
    else:
        raise ValueError(f"method must be 'pca' or 'tsne', got {method!r}")
    return coords, nodes, taxonomy.level[nodes]
