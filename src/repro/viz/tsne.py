"""Exact t-SNE in numpy (for Fig. 7e's factor visualization).

The paper projects the learned factors of the top three taxonomy levels to
2-d with t-SNE [28] and observes that items cluster around their ancestors.
This is a compact implementation of exact (O(n²)) t-SNE — the same
algorithm van der Maaten's tool runs — sufficient for the ≤2k node factors
the figure uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive

_EPS = 1e-12


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix of the rows of *x*."""
    sq = np.sum(x**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def _conditional_probabilities(
    distances: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 64
) -> np.ndarray:
    """Row-wise Gaussian affinities whose entropy matches *perplexity*.

    For every point, the bandwidth (precision ``beta``) is found by binary
    search so that the conditional distribution's perplexity equals the
    target — the standard t-SNE calibration.
    """
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(max_iter):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= _EPS:
                entropy = 0.0
                probs = np.zeros_like(row)
            else:
                probs = weights / total
                entropy = -np.sum(probs * np.log(probs + _EPS))
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:  # entropy too high → sharpen
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == 0.0 else (beta + beta_low) / 2.0
        p[i, np.arange(n) != i] = probs
    return p


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iter: int = 400,
    learning_rate="auto",
    early_exaggeration: float = 4.0,
    exaggeration_iter: int = 100,
    momentum: float = 0.8,
    seed: RngLike = 0,
) -> np.ndarray:
    """Embed the rows of *x* into ``n_components`` dimensions.

    Standard exact t-SNE: symmetrized Gaussian input affinities, Student-t
    output kernel, gradient descent with momentum and early exaggeration.
    ``learning_rate="auto"`` scales the step with the input size
    (``max(n / early_exaggeration / 4, 20)``), which keeps the descent
    stable from tens to thousands of points.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x must be 2-d (points × features)")
    n = x.shape[0]
    check_positive("n_iter", n_iter)
    check_positive("perplexity", perplexity)
    if learning_rate == "auto":
        learning_rate = max(n / early_exaggeration / 4.0, 20.0)
    check_positive("learning_rate", learning_rate)
    if n <= 3 * perplexity:
        perplexity = max((n - 1) / 3.0, 1.0)

    rng = ensure_rng(seed)
    distances = _pairwise_squared_distances(x)
    p_conditional = _conditional_probabilities(distances, perplexity)
    p = (p_conditional + p_conditional.T) / (2.0 * n)
    np.maximum(p, _EPS, out=p)

    y = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    exaggerated = p * early_exaggeration
    for iteration in range(n_iter):
        p_now = exaggerated if iteration < exaggeration_iter else p
        d2 = _pairwise_squared_distances(y)
        q_kernel = 1.0 / (1.0 + d2)
        np.fill_diagonal(q_kernel, 0.0)
        q = q_kernel / max(q_kernel.sum(), _EPS)
        np.maximum(q, _EPS, out=q)

        coeff = (p_now - q) * q_kernel
        grad = 4.0 * (np.diag(coeff.sum(axis=1)) - coeff) @ y
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y


def kl_divergence(x: np.ndarray, y: np.ndarray, perplexity: float = 30.0) -> float:
    """KL(P‖Q) of an embedding — the objective t-SNE minimizes."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = x.shape[0]
    if n <= 3 * perplexity:
        perplexity = max((n - 1) / 3.0, 1.0)
    p_conditional = _conditional_probabilities(
        _pairwise_squared_distances(x), perplexity
    )
    p = (p_conditional + p_conditional.T) / (2.0 * n)
    np.maximum(p, _EPS, out=p)
    d2 = _pairwise_squared_distances(y)
    q_kernel = 1.0 / (1.0 + d2)
    np.fill_diagonal(q_kernel, 0.0)
    q = q_kernel / max(q_kernel.sum(), _EPS)
    np.maximum(q, _EPS, out=q)
    mask = ~np.eye(n, dtype=bool)
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))
