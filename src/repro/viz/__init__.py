"""Visualization substrate: t-SNE, PCA, and factor-clustering diagnostics."""

from repro.viz.projection import (
    ClusteringReport,
    pca,
    project_taxonomy_factors,
    taxonomy_clustering_report,
)
from repro.viz.tsne import kl_divergence, tsne

__all__ = [
    "tsne",
    "kl_divergence",
    "pca",
    "project_taxonomy_factors",
    "taxonomy_clustering_report",
    "ClusteringReport",
]
