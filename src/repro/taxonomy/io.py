"""Serialization of taxonomies and parsing of public catalog formats.

Two on-disk formats:

* a native JSON format (``save_taxonomy`` / ``load_taxonomy``) that
  round-trips :class:`~repro.taxonomy.tree.Taxonomy` exactly, and
* the Amazon product-metadata convention — JSON lines, each with an item id
  and one or more root-to-leaf ``categories`` paths — which is the public
  substitute for the paper's proprietary Yahoo! Shopping mapping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.taxonomy.builder import from_paths
from repro.taxonomy.tree import Taxonomy, TaxonomyError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_taxonomy(taxonomy: Taxonomy, path: PathLike) -> None:
    """Write *taxonomy* to *path* in the native JSON format."""
    payload = {
        "format": "repro-taxonomy",
        "version": _FORMAT_VERSION,
        "parent": [int(p) for p in taxonomy.parent],
        "names": [taxonomy.name_of(v) for v in range(taxonomy.n_nodes)],
        "revision": int(taxonomy.revision),
        "digest": taxonomy.digest,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_taxonomy(path: PathLike) -> Taxonomy:
    """Read a taxonomy written by :func:`save_taxonomy`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro-taxonomy":
        raise TaxonomyError(f"{path} is not a repro taxonomy file")
    if payload.get("version") != _FORMAT_VERSION:
        raise TaxonomyError(
            f"unsupported taxonomy format version {payload.get('version')!r}"
        )
    taxonomy = Taxonomy(
        payload["parent"],
        names=payload.get("names"),
        revision=int(payload.get("revision", 0)),
    )
    recorded = payload.get("digest")
    if recorded is not None and recorded != taxonomy.digest:
        raise TaxonomyError(
            f"{path} is corrupt: stored digest {recorded[:12]}... does not "
            f"match the tree structure ({taxonomy.version.short}...)"
        )
    return taxonomy


def parse_category_records(
    records: Iterable[Union[str, dict]],
    id_field: str = "asin",
    category_field: str = "categories",
) -> Tuple[Taxonomy, Dict[str, int]]:
    """Build a taxonomy from Amazon-style metadata records.

    Parameters
    ----------
    records:
        JSON strings or already-decoded dicts.  Each record must contain an
        item identifier (*id_field*) and *category_field*: either one path
        (list of names) or a list of paths; only the first path of each item
        is used, matching the paper's single-categorization assumption.
    Returns
    -------
    (taxonomy, item_ids):
        The taxonomy, and a mapping from the catalog's item identifier to
        the dense item index in the taxonomy.
    """
    paths: List[List[str]] = []
    identifiers: List[str] = []
    seen: Dict[str, None] = {}
    for record in records:
        if isinstance(record, str):
            record = record.strip()
            if not record:
                continue
            record = json.loads(record)
        item_id = record.get(id_field)
        categories = record.get(category_field)
        if item_id is None or not categories:
            continue
        if item_id in seen:
            continue
        seen.setdefault(item_id)
        path = categories[0] if isinstance(categories[0], (list, tuple)) else categories
        if not path:
            continue
        paths.append([str(c) for c in path] + [f"item::{item_id}"])
        identifiers.append(str(item_id))
    if not paths:
        raise TaxonomyError("no usable category records found")

    taxonomy = from_paths(paths)
    item_ids: Dict[str, int] = {}
    name_to_item = {
        taxonomy.name_of(taxonomy.node_of_item(i)): i
        for i in range(taxonomy.n_items)
    }
    for identifier in identifiers:
        item_ids[identifier] = name_to_item[f"item::{identifier}"]
    return taxonomy, item_ids


def load_category_file(
    path: PathLike, id_field: str = "asin", category_field: str = "categories"
) -> Tuple[Taxonomy, Dict[str, int]]:
    """Parse a JSON-lines category metadata file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_category_records(
            handle, id_field=id_field, category_field=category_field
        )
