"""Growing a taxonomy as new items are released (paper Sec. 1, cold start).

"The set of individual products/items is highly dynamic, [but] the
taxonomy is relatively stable.  The ancestors of a newly arrived item can
be initially used to guide recommendations for the new item."

:func:`add_items` appends new leaves under existing categories *without
renumbering anything*: existing node ids and dense item indices are
preserved, and the new items take the next dense indices.  A trained
:class:`~repro.core.factors.FactorSet` can then be carried over with
:func:`repro.core.factors.FactorSet.expand` — the new items' offsets start
at zero, so Eq. 1 scores them exactly by their category until purchase
data arrives.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.tree import Taxonomy, TaxonomyError, node_names


def add_items(
    taxonomy: Taxonomy,
    parents: Sequence[int],
    names: Optional[Sequence[str]] = None,
) -> Tuple[Taxonomy, np.ndarray]:
    """Append one new item under each node of *parents*.

    Parameters
    ----------
    taxonomy:
        The existing taxonomy (unchanged; a new one is returned).
    parents:
        Interior node ids the new items attach to.  Attaching under a
        *leaf* is rejected — it would turn an existing item into a
        category and shift every dense item index after it.
    names:
        Optional names for the new items.

    Returns
    -------
    (new_taxonomy, new_item_indices):
        ``new_item_indices[k]`` is the dense item index of the item added
        under ``parents[k]``.  All pre-existing node ids and item indices
        are identical in the new taxonomy.
    """
    parents = [int(p) for p in parents]
    if not parents:
        raise TaxonomyError("parents must contain at least one node")
    for parent in parents:
        if not 0 <= parent < taxonomy.n_nodes:
            raise TaxonomyError(f"parent {parent} does not exist")
        if taxonomy.is_leaf(parent):
            raise TaxonomyError(
                f"cannot attach an item under leaf node {parent}: existing "
                f"items must stay leaves"
            )
    if names is not None:
        names = list(names)
        if len(names) != len(parents):
            raise TaxonomyError(
                f"{len(names)} names given for {len(parents)} new items"
            )

    old_n = taxonomy.n_nodes
    parent_array = np.concatenate(
        [taxonomy.parent, np.asarray(parents, dtype=np.int64)]
    )
    all_names: Optional[List[str]] = node_names(taxonomy)
    if names is not None and all_names is None:
        all_names = [taxonomy.name_of(v) for v in range(old_n)]
    if all_names is not None:
        if names is None:
            names = [f"new-item-{k}" for k in range(len(parents))]
        all_names.extend(names)
    grown = Taxonomy(
        parent_array, names=all_names, revision=taxonomy.revision + 1
    )

    # New nodes have the highest ids, hence the highest dense indices;
    # every pre-existing item keeps its index.  Verify the invariant.
    new_nodes = np.arange(old_n, old_n + len(parents))
    new_items = grown.items_of_nodes(new_nodes)
    if not np.array_equal(
        grown.items[: taxonomy.n_items], taxonomy.items
    ):  # pragma: no cover - guarded by the leaf-parent check above
        raise TaxonomyError("item renumbering detected; refusing to proceed")
    return grown, new_items
