"""Synthetic taxonomy generation.

The paper's Yahoo! Shopping taxonomy is proprietary; these generators build
trees with the same *shape statistics* (depth, per-level fan-out) at any
scale.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.tree import Taxonomy
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive

#: Per-level fan-out that preserves the Yahoo! Shopping ratios
#: (23 top / 270 mid / 1500 low) at roughly 1/10 scale per level.
PAPER_LIKE_BRANCHING: Tuple[int, ...] = (23, 12, 6)


def complete_taxonomy(
    branching: Sequence[int],
    items_per_leaf: int,
    name_prefix: str = "cat",
) -> Taxonomy:
    """Build a complete tree: ``branching[d]`` children at internal depth *d*,
    then ``items_per_leaf`` items under every lowest-level category.

    Nodes are numbered in level order (root = 0, then the top categories,
    ...), so the items form a contiguous block of the highest ids.
    """
    for i, width in enumerate(branching):
        check_positive(f"branching[{i}]", width)
    check_positive("items_per_leaf", items_per_leaf)

    widths = list(branching) + [items_per_leaf]
    parent: List[int] = [-1]
    names: List[str] = ["<root>"]
    previous_level = [0]
    for depth, width in enumerate(widths):
        current_level: List[int] = []
        is_item_level = depth == len(widths) - 1
        for parent_node in previous_level:
            for k in range(width):
                node = len(parent)
                parent.append(parent_node)
                if is_item_level:
                    names.append(f"item-{parent_node}-{k}")
                else:
                    names.append(f"{name_prefix}-{depth}-{node}")
                current_level.append(node)
        previous_level = current_level
    return Taxonomy(parent, names=names)


def random_taxonomy(
    branching: Sequence[int],
    items_per_leaf: int,
    jitter: float = 0.3,
    seed: RngLike = None,
    name_prefix: str = "cat",
) -> Taxonomy:
    """Like :func:`complete_taxonomy` but with jittered fan-outs.

    Each node's child count is drawn uniformly from
    ``[width * (1 - jitter), width * (1 + jitter)]`` (at least 1), which
    produces the uneven category sizes real catalogs have.
    """
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    rng = ensure_rng(seed)
    widths = list(branching) + [items_per_leaf]
    parent: List[int] = [-1]
    names: List[str] = ["<root>"]
    previous_level = [0]
    for depth, width in enumerate(widths):
        lo = max(1, int(round(width * (1.0 - jitter))))
        hi = max(lo, int(round(width * (1.0 + jitter))))
        current_level: List[int] = []
        is_item_level = depth == len(widths) - 1
        for parent_node in previous_level:
            count = int(rng.integers(lo, hi + 1))
            for k in range(count):
                node = len(parent)
                parent.append(parent_node)
                if is_item_level:
                    names.append(f"item-{parent_node}-{k}")
                else:
                    names.append(f"{name_prefix}-{depth}-{node}")
                current_level.append(node)
        previous_level = current_level
    return Taxonomy(parent, names=names)


def paper_scale_taxonomy(scale: float = 0.01, seed: RngLike = 0) -> Taxonomy:
    """A taxonomy with the paper's level-size *ratios* at a chosen scale.

    ``scale = 1.0`` approximates the evaluation taxonomy of Sec. 7.1
    (23 top-level categories, ~270 mid, ~1500 low, ~1.5M items); smaller
    scales shrink only the item level and the lower fan-outs.
    """
    check_positive("scale", scale)
    top = 23
    mid = max(2, int(round(12 * min(1.0, scale * 10))))
    low = max(2, int(round(6 * min(1.0, scale * 10))))
    items = max(2, int(round(1000 * scale)))
    return random_taxonomy(
        (top, mid, low), items_per_leaf=items, jitter=0.25, seed=seed
    )
