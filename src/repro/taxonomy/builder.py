"""Constructing :class:`~repro.taxonomy.tree.Taxonomy` objects.

Three entry points:

* :func:`from_parent_array` — thin validated wrapper,
* :func:`from_edges` — ``(parent_name, child_name)`` pairs,
* :func:`from_paths` — root-to-item category paths such as
  ``["Electronics", "Cameras", "DSLR", "item-42"]``, the natural format of
  public catalog dumps.

All builders renumber nodes in breadth-first level order (root first), so a
taxonomy's node ids are stable regardless of input ordering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.tree import Taxonomy, TaxonomyError, bfs_order


def from_parent_array(
    parent: Sequence[int], names: Optional[Sequence[str]] = None
) -> Taxonomy:
    """Build a taxonomy directly from a parent-pointer array."""
    return Taxonomy(parent, names=names)


def from_edges(
    edges: Iterable[Tuple[str, str]], root: Optional[str] = None
) -> Taxonomy:
    """Build a taxonomy from ``(parent_name, child_name)`` string pairs.

    Parameters
    ----------
    edges:
        Directed edges pointing away from the root.
    root:
        Name of the root node.  If omitted, the unique node that never
        appears as a child is used.
    """
    edges = list(edges)
    if not edges:
        raise TaxonomyError("edge list is empty")
    parents_of: Dict[str, str] = {}
    children_of: Dict[str, List[str]] = {}
    nodes: Dict[str, None] = {}
    for parent_name, child_name in edges:
        if child_name in parents_of and parents_of[child_name] != parent_name:
            raise TaxonomyError(
                f"node {child_name!r} has two parents: "
                f"{parents_of[child_name]!r} and {parent_name!r}"
            )
        parents_of[child_name] = parent_name
        children_of.setdefault(parent_name, []).append(child_name)
        nodes.setdefault(parent_name)
        nodes.setdefault(child_name)

    if root is None:
        candidates = [n for n in nodes if n not in parents_of]
        if len(candidates) != 1:
            raise TaxonomyError(
                f"cannot infer a unique root; candidates: {sorted(candidates)}"
            )
        root = candidates[0]
    elif root not in nodes:
        raise TaxonomyError(f"declared root {root!r} does not appear in edges")

    return _bfs_renumber(root, children_of, expected_nodes=len(nodes))


def from_paths(paths: Iterable[Sequence[str]], root_name: str = "<root>") -> Taxonomy:
    """Build a taxonomy from root-to-leaf name paths.

    Each path is a sequence of category names ending in an item name, e.g.
    ``["Electronics", "Cameras", "item-42"]``.  Identical prefixes are
    merged; the same full path may appear multiple times.  A synthetic root
    named *root_name* is added above the first path components.

    Paths are interpreted namespaced: two categories named ``"Accessories"``
    under different parents are distinct nodes.
    """
    children_of: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    seen: Dict[Tuple[str, ...], None] = {(): None}
    count = 0
    for path in paths:
        path = tuple(path)
        if not path:
            raise TaxonomyError("empty path encountered")
        count += 1
        for depth in range(len(path)):
            prefix = path[: depth + 1]
            if prefix in seen:
                continue
            seen.setdefault(prefix)
            children_of.setdefault(path[:depth], []).append(prefix)
    if count == 0:
        raise TaxonomyError("no paths given")

    def display(key: Tuple[str, ...]) -> str:
        return root_name if not key else key[-1]

    return _bfs_renumber((), children_of, expected_nodes=len(seen), display=display)


def _bfs_renumber(root, children_of, expected_nodes: int, display=None) -> Taxonomy:
    """Renumber an adjacency dict into level-order ids and build the tree."""
    order = bfs_order(root, children_of)
    if len(order) != expected_nodes:
        raise TaxonomyError(
            f"taxonomy is not a connected tree: reached {len(order)} of "
            f"{expected_nodes} nodes from the root"
        )
    ids = {name: i for i, name in enumerate(order)}
    parent = np.full(len(order), -1, dtype=np.int64)
    for parent_name, kids in children_of.items():
        for kid in kids:
            parent[ids[kid]] = ids[parent_name]
    if display is None:
        names = [str(name) for name in order]
    else:
        names = [display(name) for name in order]
    return Taxonomy(parent, names=names)
