"""Taxonomy substrate: the tree of categories and items.

The taxonomy is the structural prior of the whole library (paper Sec. 1/3):
items are leaves, interior nodes are categories, and the TF model sums a
learned offset along each item's ancestor chain.

Since 1.9 the tree is a *versioned, learnable artifact* rather than a
construction-time constant: every :class:`Taxonomy` carries a content
digest and revision (:class:`TaxonomyVersion`), :mod:`repro.taxonomy.learn`
builds and refines trees from item factors, and the serving/streaming
layers propagate the version through bundles, states, and hot swaps.
"""

from repro.taxonomy.builder import from_edges, from_parent_array, from_paths
from repro.taxonomy.extend import add_items
from repro.taxonomy.generator import (
    PAPER_LIKE_BRANCHING,
    complete_taxonomy,
    paper_scale_taxonomy,
    random_taxonomy,
)
from repro.taxonomy.io import (
    load_category_file,
    load_taxonomy,
    parse_category_records,
    save_taxonomy,
)
from repro.taxonomy.learn import (
    bootstrap_taxonomy,
    category_centroids,
    learn_taxonomy,
    place_item,
    refine_placements,
    replant_items,
)
from repro.taxonomy.tree import (
    ROOT,
    Taxonomy,
    TaxonomyError,
    bfs_order,
    collapse_single_child_chains,
    node_names,
)
from repro.taxonomy.version import TaxonomyVersion

__all__ = [
    "ROOT",
    "Taxonomy",
    "TaxonomyError",
    "TaxonomyVersion",
    "bfs_order",
    "collapse_single_child_chains",
    "node_names",
    "from_edges",
    "from_parent_array",
    "from_paths",
    "add_items",
    "complete_taxonomy",
    "random_taxonomy",
    "paper_scale_taxonomy",
    "PAPER_LIKE_BRANCHING",
    "save_taxonomy",
    "load_taxonomy",
    "parse_category_records",
    "load_category_file",
    "bootstrap_taxonomy",
    "category_centroids",
    "learn_taxonomy",
    "place_item",
    "refine_placements",
    "replant_items",
]
