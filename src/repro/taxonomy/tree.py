"""The :class:`Taxonomy` tree over items and categories.

A taxonomy is a rooted tree.  Interior nodes are categories; leaves are the
items that can be purchased.  The TF model of the paper attaches an *offset*
factor to every node and defines an item's effective factor as the sum of the
offsets along its ancestor chain (Eq. 1), so the operations this class is
optimized for are:

* ancestor chains as padded integer matrices (for vectorized gathers),
* children / sibling lookups (for sibling-based training, Sec. 4.2),
* level slices (for cascaded inference, Sec. 5.1).

Nodes are integers ``0 .. n_nodes - 1`` with node ``0`` as the root.  The
virtual id ``n_nodes`` (:attr:`Taxonomy.pad_id`) pads ragged ancestor chains;
factor stores allocate one extra zero row for it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.version import TaxonomyVersion
from repro.utils.rng import RngLike, ensure_rng

ROOT = 0


class TaxonomyError(ValueError):
    """Raised when a structure does not form a valid taxonomy."""


def bfs_order(root, children_of: Mapping) -> List:
    """Level-order traversal of an adjacency mapping, children sorted.

    The shared renumbering walk of the taxonomy builders: every
    constructor that turns named edges/paths into dense node ids uses
    this exact order, so a taxonomy's ids are stable regardless of the
    input ordering.

    Examples
    --------
    >>> bfs_order("r", {"r": ["b", "a"], "a": ["c"]})
    ['r', 'a', 'b', 'c']
    """
    order = [root]
    idx = 0
    while idx < len(order):
        node = order[idx]
        idx += 1
        order.extend(sorted(children_of.get(node, [])))
    return order


def node_names(taxonomy: "Taxonomy") -> Optional[List[str]]:
    """The taxonomy's name list, or ``None`` when it has only defaults.

    The shared helper behind every tree-growing operation
    (:func:`~repro.taxonomy.extend.add_items`,
    :meth:`Taxonomy.replant`): derived trees must carry the source's
    names forward, but a taxonomy built without names should not
    suddenly sprout materialized ``node:<id>`` placeholders.
    """
    if taxonomy._names is None:
        return None
    return [taxonomy.name_of(v) for v in range(taxonomy.n_nodes)]


def collapse_single_child_chains(
    parent: Sequence[int],
    names: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, Optional[List[str]], np.ndarray]:
    """Splice out interior nodes that have exactly one child.

    Chains like ``root → A → B → item`` where ``A`` and ``B`` each have a
    single child carry no grouping information — every ancestor's subtree
    is the same item set — so learned trees drop them (the idiom the
    taxonomic-training literature uses after dendrogram cuts).  Leaves
    are never removed and the root always survives; surviving nodes are
    renumbered in level order.

    Returns
    -------
    (parent, names, kept):
        The collapsed parent array, matching names (``None`` when *names*
        is ``None``), and the original ids of the surviving nodes in
        their new order.

    Examples
    --------
    >>> parent, _, kept = collapse_single_child_chains([-1, 0, 1, 2, 2])
    >>> parent.tolist()
    [-1, 0, 0]
    >>> kept.tolist()
    [0, 3, 4]
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    child_count = np.zeros(n, dtype=np.int64)
    for p in parent[1:]:
        child_count[p] += 1
    is_leaf = child_count == 0
    # A node is removable while it is interior, not the root, and has a
    # single child; contract bottom-up so whole chains collapse in one
    # pass.  The root with one interior child is contracted downward
    # (the child is removed and its children re-attach to the root).
    resolved = parent.copy()
    removed = np.zeros(n, dtype=bool)
    for v in range(1, n):
        if child_count[v] == 1 and not is_leaf[v]:
            removed[v] = True

    # Re-route every survivor past its removed ancestors.
    def surviving_parent(v: int) -> int:
        p = int(resolved[v])
        while p != -1 and removed[p]:
            p = int(resolved[p])
        return p

    # Root special case: while the root's only surviving child is
    # interior, splice that child out too (its children re-attach to the
    # root), so a dendrogram whose top merge is trivial has no useless
    # unary crown.
    while True:
        kids = [
            int(v)
            for v in range(1, n)
            if not removed[v] and surviving_parent(int(v)) == ROOT
        ]
        if len(kids) == 1 and not is_leaf[kids[0]]:
            removed[kids[0]] = True
        else:
            break

    survivors = np.flatnonzero(~removed)
    children_of: Dict[int, List[int]] = {}
    for v in survivors:
        if v == ROOT:
            continue
        children_of.setdefault(surviving_parent(int(v)), []).append(int(v))
    order = bfs_order(ROOT, children_of)
    new_id = {old: new for new, old in enumerate(order)}
    out = np.full(len(order), -1, dtype=np.int64)
    for old in order[1:]:
        out[new_id[old]] = new_id[surviving_parent(old)]
    out_names: Optional[List[str]] = None
    if names is not None:
        out_names = [str(names[old]) for old in order]
    return out, out_names, np.asarray(order, dtype=np.int64)


class Taxonomy:
    """An immutable rooted tree whose leaves are items.

    Parameters
    ----------
    parent:
        ``parent[v]`` is the parent node of ``v``; ``parent[0]`` must be
        ``-1`` (node 0 is the root).
    names:
        Optional human-readable node names (same length as ``parent``).
        Keyword-only since 1.9 (see ``docs/migration.md``).
    revision:
        Lineage counter of this tree generation (keyword-only, default
        ``0``).  Derived trees — :func:`~repro.taxonomy.extend.add_items`
        extensions, :meth:`replant` refinements — carry ``revision + 1``
        of their source, so an evolving catalog's generations are totally
        ordered even when a refinement restores an earlier structure.

    Notes
    -----
    Items are *defined* as the leaves of the tree.  ``item_of_node`` /
    ``node_of_item`` translate between the dense item index space
    ``0 .. n_items - 1`` (used by transaction logs and factor matrices) and
    node ids.

    A taxonomy is no longer an anonymous construction-time constant: it
    is a **versioned artifact**.  :attr:`digest` fingerprints the
    structure, :attr:`version` packages digest + shape + revision as the
    :class:`~repro.taxonomy.version.TaxonomyVersion` that bundle
    manifests, serving states, and subtree indexes carry.
    """

    def __init__(
        self,
        parent: Sequence[int],
        *,
        names: Optional[Sequence[str]] = None,
        revision: int = 0,
    ):
        if revision < 0:
            raise TaxonomyError(f"revision must be >= 0, got {revision}")
        self.revision = int(revision)
        self._digest: Optional[str] = None
        self._parent = np.asarray(parent, dtype=np.int64)
        if self._parent.ndim != 1 or self._parent.size == 0:
            raise TaxonomyError("parent must be a non-empty 1-d array")
        if self._parent[ROOT] != -1:
            raise TaxonomyError("node 0 must be the root (parent[0] == -1)")
        n = self._parent.size
        if np.count_nonzero(self._parent == -1) != 1:
            raise TaxonomyError("exactly one root (parent == -1) is allowed")
        others = np.delete(self._parent, ROOT)
        if others.size and (others.min() < 0 or others.max() >= n):
            raise TaxonomyError("parent ids must reference existing nodes")

        self._level = self._compute_levels()
        self._children = self._compute_children()
        leaf_mask = np.array([len(self._children[v]) == 0 for v in range(n)])
        if leaf_mask[ROOT] and n > 1:
            raise TaxonomyError("root cannot be a leaf in a multi-node taxonomy")
        self._items = np.flatnonzero(leaf_mask)
        self._item_index = np.full(n, -1, dtype=np.int64)
        self._item_index[self._items] = np.arange(self._items.size)

        if names is not None:
            names = list(names)
            if len(names) != n:
                raise TaxonomyError(
                    f"names has {len(names)} entries for {n} nodes"
                )
        self._names = names
        self._ancestor_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total number of nodes, including the root and all items."""
        return self._parent.size

    @property
    def n_items(self) -> int:
        """Number of items (leaves)."""
        return self._items.size

    @property
    def pad_id(self) -> int:
        """Virtual node id used to pad ragged ancestor chains."""
        return self.n_nodes

    @property
    def digest(self) -> str:
        """SHA-256 content digest of the tree structure (hex).

        Computed over the parent-pointer array only: names are cosmetic
        and two structurally identical trees share a digest however they
        were built.  Cached after the first call.
        """
        if self._digest is None:
            self._digest = hashlib.sha256(self._parent.tobytes()).hexdigest()
        return self._digest

    @property
    def version(self) -> TaxonomyVersion:
        """This tree generation's :class:`~repro.taxonomy.version.TaxonomyVersion`."""
        return TaxonomyVersion(
            digest=self.digest,
            n_nodes=self.n_nodes,
            n_items=self.n_items,
            revision=self.revision,
        )

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node (root has depth 0)."""
        return int(self._level.max())

    @property
    def parent(self) -> np.ndarray:
        """Read-only parent array (root's entry is ``-1``)."""
        view = self._parent.view()
        view.flags.writeable = False
        return view

    @property
    def level(self) -> np.ndarray:
        """Read-only depth of every node (root = 0)."""
        view = self._level.view()
        view.flags.writeable = False
        return view

    @property
    def items(self) -> np.ndarray:
        """Node ids of all items, ordered by node id."""
        view = self._items.view()
        view.flags.writeable = False
        return view

    def name_of(self, node: int) -> str:
        """Human-readable name of *node* (falls back to ``node:<id>``)."""
        if self._names is not None:
            return self._names[node]
        return f"node:{node}"

    # ------------------------------------------------------------------
    # Item <-> node translation
    # ------------------------------------------------------------------
    def node_of_item(self, item: int) -> int:
        """Node id of dense item index *item*."""
        return int(self._items[item])

    def nodes_of_items(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_of_item`."""
        return self._items[np.asarray(items, dtype=np.int64)]

    def item_of_node(self, node: int) -> int:
        """Dense item index of leaf *node* (``-1`` for interior nodes)."""
        return int(self._item_index[node])

    def items_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`item_of_node`."""
        return self._item_index[np.asarray(nodes, dtype=np.int64)]

    def is_leaf(self, node: int) -> bool:
        """Whether *node* is an item."""
        return self._item_index[node] >= 0

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------
    def children(self, node: int) -> np.ndarray:
        """Children of *node* (empty array for items)."""
        return self._children[node]

    def siblings(self, node: int) -> np.ndarray:
        """Other children of *node*'s parent (empty for the root)."""
        if node == ROOT:
            return np.empty(0, dtype=np.int64)
        kids = self._children[self._parent[node]]
        return kids[kids != node]

    def random_sibling(self, node: int, rng: RngLike = None) -> int:
        """A uniformly random sibling of *node*, or ``-1`` if it has none."""
        sibs = self.siblings(node)
        if sibs.size == 0:
            return -1
        return int(ensure_rng(rng).choice(sibs))

    def path_to_root(self, node: int) -> List[int]:
        """Node ids from *node* (inclusive) up to the root (inclusive)."""
        path = [node]
        while self._parent[path[-1]] != -1:
            path.append(int(self._parent[path[-1]]))
        return path

    def ancestor_at_height(self, node: int, height: int) -> int:
        """The paper's ``p^m(node)``: walk *height* steps toward the root.

        Walking past the root returns the root.
        """
        for _ in range(height):
            nxt = self._parent[node]
            if nxt == -1:
                break
            node = int(nxt)
        return int(node)

    def nodes_at_level(self, level: int) -> np.ndarray:
        """All node ids whose depth equals *level*."""
        return np.flatnonzero(self._level == level)

    def level_sizes(self) -> List[int]:
        """Number of nodes at each depth, from the root down."""
        return [int(np.count_nonzero(self._level == d)) for d in range(self.max_depth + 1)]

    def subtree_items(self, node: int) -> np.ndarray:
        """Dense item indices of all leaves under *node* (inclusive)."""
        stack = [node]
        found: List[int] = []
        while stack:
            v = stack.pop()
            idx = self._item_index[v]
            if idx >= 0:
                found.append(int(idx))
            else:
                stack.extend(int(c) for c in self._children[v])
        return np.asarray(sorted(found), dtype=np.int64)

    def item_groups_at_level(
        self, level: int, items: Optional[np.ndarray] = None
    ) -> List[Tuple[int, np.ndarray]]:
        """Partition items by their ancestor subtree at depth *level*.

        The vectorized batch counterpart of calling :meth:`subtree_items`
        on every node at *level*: one pass over the (given) items instead
        of one tree walk per subtree.  This is the grouping the pruned
        retrieval layer (:class:`repro.serving.index.SubtreeIndex`) builds
        its scan blocks from — items that share a subtree share ancestor
        offsets under Eq. 1, so their effective factors cluster tightly
        and one subtree-level score bound covers them all.

        Parameters
        ----------
        level:
            Taxonomy depth of the anchor nodes.  Items shallower than
            *level* anchor to themselves (matching :meth:`item_category`).
        items:
            Dense item indices to partition (default: the whole catalog).
            An item-partitioned shard passes its slice here to index only
            the items it serves.

        Returns
        -------
        ``[(anchor_node, member_items), ...]`` with anchors ascending and
        each member array in ascending dense-item order; every requested
        item appears in exactly one group.

        Examples
        --------
        >>> tax = Taxonomy([-1, 0, 0, 1, 1, 2, 2])   # two 2-leaf subtrees
        >>> [(node, members.tolist())
        ...  for node, members in tax.item_groups_at_level(1)]
        [(1, [0, 1]), (2, [2, 3])]
        """
        if items is None:
            items = np.arange(self.n_items, dtype=np.int64)
        else:
            items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return []
        anchors = self.item_category(items, level)
        order = np.argsort(anchors, kind="stable")
        sorted_anchors = anchors[order]
        boundaries = np.flatnonzero(np.diff(sorted_anchors)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [items.size]])
        return [
            (int(sorted_anchors[start]), np.sort(items[order[start:stop]]))
            for start, stop in zip(starts, stops)
        ]

    # ------------------------------------------------------------------
    # Versioned evolution
    # ------------------------------------------------------------------
    def replant(
        self,
        moves: Mapping[int, int],
        revision: Optional[int] = None,
    ) -> "Taxonomy":
        """Re-attach items under new categories — the refinement primitive.

        *moves* maps **dense item indices** to the interior node each
        item should hang under instead of its current parent.  Node ids,
        the node count, and every dense item index are preserved (leaves
        stay leaves and keep their ids, so factor matrices and
        transaction logs remain index-compatible); only the ancestor
        chains of the moved items change.  The result carries
        ``revision + 1`` (or an explicit *revision*).

        Examples
        --------
        >>> tax = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
        >>> moved = tax.replant({0: 2})     # item 0 now lives under node 2
        >>> int(moved.parent[tax.node_of_item(0)])
        2
        >>> (moved.n_items, moved.revision)
        (4, 1)
        """
        if not moves:
            raise TaxonomyError("moves must contain at least one item")
        parent = self._parent.copy()
        for item, target in moves.items():
            item = int(item)
            target = int(target)
            if not 0 <= item < self.n_items:
                raise TaxonomyError(
                    f"item {item} is not a dense item index "
                    f"(taxonomy has {self.n_items} items)"
                )
            if not 0 <= target < self.n_nodes:
                raise TaxonomyError(f"target node {target} does not exist")
            if self.is_leaf(target):
                raise TaxonomyError(
                    f"cannot replant item {item} under leaf node {target}: "
                    f"items attach to categories, not to other items"
                )
            parent[self.node_of_item(item)] = target
        # A move that empties a category would turn it into a leaf — a
        # brand-new "item" renumbering every dense index after it.
        child_count = np.zeros(self.n_nodes, dtype=np.int64)
        np.add.at(child_count, parent[1:], 1)
        emptied = np.flatnonzero(
            (child_count == 0) & (self._item_index < 0)
        )
        if emptied.size:
            raise TaxonomyError(
                f"replant would empty categories {emptied.tolist()}, "
                f"turning them into items and renumbering the catalog; "
                f"keep at least one child under every category"
            )
        return Taxonomy(
            parent,
            names=node_names(self),
            revision=self.revision + 1 if revision is None else revision,
        )

    # ------------------------------------------------------------------
    # Ancestor matrices (the hot path of the TF model)
    # ------------------------------------------------------------------
    def ancestor_matrix(self, levels: Optional[int] = None) -> np.ndarray:
        """Padded ancestor chains for *all* nodes.

        Returns an ``(n_nodes, levels)`` int64 matrix ``A`` where row ``v``
        is ``[v, parent(v), grandparent(v), ...]`` padded with
        :attr:`pad_id` once the root has been passed.  ``levels`` defaults
        to ``max_depth + 1`` (full chains).

        The chain *includes* the root when ``levels`` is large enough, which
        matches Eq. 1 / Fig. 3 of the paper (``v_A = w_R + w_S + w_M + w_A``).
        """
        if levels is None:
            levels = self.max_depth + 1
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        cached = self._ancestor_cache.get(levels)
        if cached is not None:
            return cached

        n = self.n_nodes
        out = np.full((n, levels), self.pad_id, dtype=np.int64)
        current = np.arange(n, dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        for col in range(levels):
            out[alive, col] = current[alive]
            parents = self._parent[current]
            alive = alive & (parents != -1)
            current = np.where(alive, parents, current)
        out.flags.writeable = False
        self._ancestor_cache[levels] = out
        return out

    def item_ancestor_matrix(self, levels: Optional[int] = None) -> np.ndarray:
        """Rows of :meth:`ancestor_matrix` restricted to items.

        Shape ``(n_items, levels)``; row ``k`` is the chain of the item with
        dense index ``k``.
        """
        return self.ancestor_matrix(levels)[self._items]

    def item_category(self, items: np.ndarray, level: int) -> np.ndarray:
        """Map dense item indices to their ancestor node at depth *level*.

        Items shallower than *level* map to themselves.
        """
        items = np.asarray(items, dtype=np.int64)
        nodes = self._items[items]
        full = self.ancestor_matrix()
        # Column m holds p^m(node); the ancestor at depth `level` of a node
        # at depth d is p^(d - level)(node).
        heights = self._level[nodes] - level
        heights = np.clip(heights, 0, full.shape[1] - 1)
        return full[nodes, heights]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compute_levels(self) -> np.ndarray:
        n = self._parent.size
        level = np.full(n, -1, dtype=np.int64)
        level[ROOT] = 0
        for v in range(n):
            if level[v] >= 0:
                continue
            chain = [v]
            while level[chain[-1]] < 0:
                p = self._parent[chain[-1]]
                if p == -1:
                    break
                if len(chain) > n:
                    raise TaxonomyError("parent pointers contain a cycle")
                chain.append(int(p))
            base = level[chain[-1]]
            if base < 0:
                raise TaxonomyError("node is disconnected from the root")
            for offset, node in enumerate(reversed(chain[:-1]), start=1):
                level[node] = base + offset
        if (level < 0).any():
            raise TaxonomyError("taxonomy contains disconnected nodes")
        return level

    def _compute_children(self) -> List[np.ndarray]:
        n = self._parent.size
        order = np.argsort(self._parent, kind="stable")
        sorted_parents = self._parent[order]
        children: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        start = np.searchsorted(sorted_parents, np.arange(n), side="left")
        stop = np.searchsorted(sorted_parents, np.arange(n), side="right")
        for v in range(n):
            children[v] = np.sort(order[start[v] : stop[v]])
        return children

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:
        sizes = "/".join(str(s) for s in self.level_sizes())
        return (
            f"Taxonomy(n_nodes={self.n_nodes}, n_items={self.n_items}, "
            f"levels={sizes})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Taxonomy):
            return NotImplemented
        return np.array_equal(self._parent, other._parent)

    def __hash__(self) -> int:
        return hash(self._parent.tobytes())
