"""Learning and evolving taxonomies from item factors.

The paper treats the taxonomy as a given, proprietary input (the Yahoo!
Shopping category tree).  Public transaction logs frequently have no such
tree, and even curated trees mis-place items.  This module removes the
fixed-tree assumption:

* :func:`place_item` — assign a *new* item to its best existing category
  from whatever evidence is available (an explicit factor vector,
  co-purchased items, or in the worst case popularity alone);
* :func:`learn_taxonomy` — build a tree from scratch by deterministic
  agglomerative clustering of item factors, so the TF model and every
  retrieval mode run on taxonomy-free logs;
* :func:`refine_placements` / :func:`replant_items` — periodically re-seat
  items that drifted away from their category, preserving every effective
  factor so published rankings do not jump at the swap;
* :func:`bootstrap_taxonomy` — the end-to-end taxonomy-free entry point:
  flat MF factors in, learned :class:`~repro.taxonomy.tree.Taxonomy` out.

Everything here is deterministic: byte-identical trees for identical
inputs, with all ties broken on the smallest node / item id.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.tree import (
    ROOT,
    Taxonomy,
    TaxonomyError,
    collapse_single_child_chains,
)
from repro.utils.rng import ensure_rng


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows; zero rows stay zero instead of dividing by 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.where(norms == 0.0, 1.0, norms)


def category_centroids(
    taxonomy: Taxonomy, item_factors: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean item factor of every direct item-holding category.

    Parameters
    ----------
    taxonomy:
        The tree; "categories" here are the interior nodes that are the
        **direct** parent of at least one item.
    item_factors:
        ``(n_items, K)`` matrix, row ``i`` belonging to dense item ``i``
        (typically effective factors, Eq. 1).

    Returns
    -------
    (nodes, centroids, counts):
        Category node ids in ascending order, their ``(C, K)`` member
        centroids, and the member counts.

    Examples
    --------
    >>> import numpy as np
    >>> tax = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
    >>> nodes, centroids, counts = category_centroids(tax, np.eye(4))
    >>> (nodes.tolist(), counts.tolist())
    ([1, 2], [2, 2])
    """
    item_factors = np.asarray(item_factors, dtype=np.float64)
    if item_factors.ndim != 2 or item_factors.shape[0] != taxonomy.n_items:
        raise TaxonomyError(
            f"item_factors must be (n_items={taxonomy.n_items}, K), "
            f"got {item_factors.shape}"
        )
    parents = taxonomy.parent[taxonomy.items]
    nodes, inverse = np.unique(parents, return_inverse=True)
    sums = np.zeros((nodes.size, item_factors.shape[1]), dtype=np.float64)
    np.add.at(sums, inverse, item_factors)
    counts = np.bincount(inverse, minlength=nodes.size).astype(np.int64)
    return nodes, sums / counts[:, None], counts


def place_item(
    taxonomy: Taxonomy,
    item_factors: np.ndarray,
    vector: Optional[np.ndarray] = None,
    *,
    copurchased: Optional[Sequence[int]] = None,
    weights: Optional[Sequence[float]] = None,
    item_counts: Optional[np.ndarray] = None,
) -> int:
    """Choose the best existing category for an item outside the tree.

    The taxonomy-free replacement for the hard "every arrival must name
    its ancestor chain" requirement of the streaming layer: a new item
    with no catalog category is placed under the category whose member
    centroid is most similar (cosine) to the item's evidence.

    Evidence, in order of preference:

    1. *vector* — an explicit factor vector for the item;
    2. *copurchased* — dense indices of items it co-occurred with; the
       evidence vector is their (*weights*-weighted) mean factor;
    3. none — fall back to the most popular category: the one whose
       members account for the most purchases (*item_counts*), or the
       most members when no counts are given.

    Ties always break on the smallest category node id, so placement is
    deterministic across runs and processes.

    Returns the chosen interior node id.

    Examples
    --------
    >>> import numpy as np
    >>> tax = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
    >>> factors = np.array([[1., 0.], [1., 0.], [0., 1.], [0., 1.]])
    >>> place_item(tax, factors, np.array([0.1, 0.9]))
    2
    >>> place_item(tax, factors, copurchased=[0, 1])
    1
    >>> place_item(tax, factors)          # no evidence: first tied category
    1
    """
    item_factors = np.asarray(item_factors, dtype=np.float64)
    nodes, centroids, counts = category_centroids(taxonomy, item_factors)

    if vector is None and copurchased is not None:
        neighbors = np.asarray(list(copurchased), dtype=np.int64)
        if neighbors.size == 0:
            raise TaxonomyError("copurchased must name at least one item")
        if neighbors.min() < 0 or neighbors.max() >= taxonomy.n_items:
            raise TaxonomyError(
                f"copurchased items out of range for "
                f"{taxonomy.n_items} items: {neighbors.tolist()}"
            )
        if weights is None:
            vector = item_factors[neighbors].mean(axis=0)
        else:
            wts = np.asarray(list(weights), dtype=np.float64)
            if wts.shape != neighbors.shape:
                raise TaxonomyError(
                    f"{wts.size} weights given for {neighbors.size} items"
                )
            total = wts.sum()
            if total <= 0:
                raise TaxonomyError("co-purchase weights must sum to > 0")
            vector = (item_factors[neighbors] * wts[:, None]).sum(axis=0) / total

    if vector is not None:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != item_factors.shape[1]:
            raise TaxonomyError(
                f"evidence vector has {vector.shape[0]} dims, factors have "
                f"{item_factors.shape[1]}"
            )
        sims = _unit_rows(centroids) @ _unit_rows(vector[None, :])[0]
        # np.argmax returns the first maximum; nodes are ascending, so
        # ties resolve to the smallest category id.
        return int(nodes[np.argmax(sims)])

    if item_counts is not None:
        item_counts = np.asarray(item_counts, dtype=np.float64)
        if item_counts.shape[0] != taxonomy.n_items:
            raise TaxonomyError(
                f"item_counts must have one entry per item "
                f"({taxonomy.n_items}), got {item_counts.shape}"
            )
        parents = taxonomy.parent[taxonomy.items]
        _, inverse = np.unique(parents, return_inverse=True)
        popularity = np.zeros(nodes.size, dtype=np.float64)
        np.add.at(popularity, inverse, item_counts)
        return int(nodes[np.argmax(popularity)])
    return int(nodes[np.argmax(counts)])


def _merge_sequence(points: np.ndarray) -> List[Tuple[int, int]]:
    """Deterministic centroid-linkage agglomeration of *points*.

    Returns the ``n - 1`` merges as ``(keep, absorb)`` pairs of cluster
    representatives (a cluster is represented by its smallest member
    index).  At every step the active pair with the smallest squared
    centroid distance merges; ties break on the row-major first pair,
    i.e. the lexicographically smallest ``(i, j)``.
    """
    n = points.shape[0]
    centroid = points.astype(np.float64).copy()
    size = np.ones(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    dist = np.full((n, n), np.inf, dtype=np.float64)
    for i in range(n - 1):
        diff = centroid[i + 1 :] - centroid[i]
        dist[i, i + 1 :] = np.einsum("ij,ij->i", diff, diff)

    merges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        flat = int(np.argmin(dist))
        keep, absorb = divmod(flat, n)
        merges.append((keep, absorb))
        total = size[keep] + size[absorb]
        centroid[keep] = (
            centroid[keep] * size[keep] + centroid[absorb] * size[absorb]
        ) / total
        size[keep] = total
        active[absorb] = False
        dist[absorb, :] = np.inf
        dist[:, absorb] = np.inf
        others = np.flatnonzero(active)
        others = others[others != keep]
        if others.size:
            diff = centroid[others] - centroid[keep]
            fresh = np.einsum("ij,ij->i", diff, diff)
            lower = others[others < keep]
            upper = others[others > keep]
            dist[lower, keep] = fresh[: lower.size]
            dist[keep, upper] = fresh[lower.size :]
    return merges


def _labels_at(merges: Sequence[Tuple[int, int]], n: int, clusters: int) -> np.ndarray:
    """Replay the first ``n - clusters`` merges into per-item labels.

    Labels are canonical: every member of a cluster is labelled with the
    cluster's smallest member index.
    """
    label = np.arange(n, dtype=np.int64)
    for keep, absorb in merges[: n - clusters]:
        label[label == absorb] = keep
    return label


def learn_taxonomy(
    item_factors: np.ndarray,
    *,
    branching: int = 8,
    max_depth: int = 3,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
    sample: Optional[int] = None,
) -> Taxonomy:
    """Cluster item factors into a taxonomy — the taxonomy-free entry gate.

    Items are agglomeratively clustered (centroid linkage, deterministic
    smallest-pair tie-breaks) and the dendrogram is cut at nested sizes
    ``branching**1, branching**2, ...`` to produce at most ``max_depth``
    levels between the root and the items.  Interior single-child chains
    (a cluster identical to its only child) are collapsed through the
    shared :func:`~repro.taxonomy.tree.collapse_single_child_chains`
    helper; a category keeps a lone item rather than promoting it, so
    **dense item index ``i`` always corresponds to row ``i`` of
    *item_factors*** — the invariant transaction logs and factor matrices
    rely on.

    Parameters
    ----------
    item_factors:
        ``(n_items, K)`` matrix of item vectors (e.g. effective MF
        factors from :func:`bootstrap_taxonomy`).
    branching:
        Target fan-out per level; level ``d`` is cut at ``branching**d``
        clusters.
    max_depth:
        Maximum depth of the produced tree (items inclusive); ``1``
        degenerates to the flat root-plus-items tree.
    seed:
        Seeds the anchor subsample when *sample* caps the clustered set;
        the tree is a pure function of ``(item_factors, parameters)``.
    names:
        Optional item names (length ``n_items``).
    sample:
        Cluster at most this many anchor items (the full quadratic
        agglomeration is O(n²) memory); remaining items join their
        nearest bottom-level cluster by centroid cosine.  ``None``
        clusters everything.

    Examples
    --------
    >>> import numpy as np
    >>> pts = np.array([[0., 0.], [0.1, 0.], [5., 5.], [5.1, 5.]])
    >>> tax = learn_taxonomy(pts, branching=2, max_depth=2)
    >>> (tax.n_items, tax.max_depth)
    (4, 2)
    >>> tax.subtree_items(tax.parent[tax.node_of_item(0)]).tolist()
    [0, 1]
    """
    item_factors = np.asarray(item_factors, dtype=np.float64)
    if item_factors.ndim != 2 or item_factors.shape[0] < 1:
        raise TaxonomyError(
            f"item_factors must be a non-empty (n_items, K) matrix, "
            f"got shape {item_factors.shape}"
        )
    if branching < 2:
        raise TaxonomyError(f"branching must be >= 2, got {branching}")
    if max_depth < 1:
        raise TaxonomyError(f"max_depth must be >= 1, got {max_depth}")
    n = item_factors.shape[0]
    if names is not None:
        names = [str(x) for x in names]
        if len(names) != n:
            raise TaxonomyError(f"{len(names)} names given for {n} items")

    # --- choose the clustered anchor set -------------------------------
    if sample is not None and sample < n:
        if sample < 2:
            raise TaxonomyError(f"sample must be >= 2, got {sample}")
        rng = ensure_rng(seed)
        anchors = np.sort(rng.choice(n, size=sample, replace=False))
    else:
        anchors = np.arange(n, dtype=np.int64)

    # --- dendrogram cuts at branching**d, shallowest first -------------
    cut_sizes: List[int] = []
    for depth in range(1, max_depth):
        c = branching**depth
        if c >= anchors.size:
            break
        cut_sizes.append(c)

    if not cut_sizes:
        parent = np.zeros(n + 1, dtype=np.int64)
        parent[ROOT] = -1
        all_names = None
        if names is not None:
            all_names = ["<root>"] + names
        return Taxonomy(parent, names=all_names)

    merges = _merge_sequence(item_factors[anchors])
    anchor_levels = [_labels_at(merges, anchors.size, c) for c in cut_sizes]

    # --- spread anchor labels to the full catalog ----------------------
    if anchors.size == n:
        levels = anchor_levels
    else:
        bottom = anchor_levels[-1]
        reps = np.unique(bottom)
        sums = np.zeros((reps.size, item_factors.shape[1]), dtype=np.float64)
        np.add.at(sums, np.searchsorted(reps, bottom), item_factors[anchors])
        member_counts = np.bincount(
            np.searchsorted(reps, bottom), minlength=reps.size
        )
        sims = _unit_rows(item_factors) @ _unit_rows(
            sums / member_counts[:, None]
        ).T
        nearest = reps[np.argmax(sims, axis=1)]
        full_bottom = np.empty(n, dtype=np.int64)
        full_bottom[:] = nearest
        full_bottom[anchors] = bottom  # anchors keep their clustered label
        levels = []
        for anchor_label in anchor_levels:
            lift = np.empty(anchors.size, dtype=np.int64)
            lift[:] = anchor_label
            by_anchor = np.full(n, -1, dtype=np.int64)
            by_anchor[anchors] = np.arange(anchors.size)
            # A non-anchor inherits the level label of its bottom cluster's
            # representative anchor (nested cuts keep this consistent).
            rep_level = {int(r): int(anchor_label[np.flatnonzero(bottom == r)[0]]) for r in reps}
            full = np.array(
                [
                    lift[by_anchor[i]]
                    if by_anchor[i] >= 0
                    else rep_level[int(full_bottom[i])]
                    for i in range(n)
                ],
                dtype=np.int64,
            )
            levels.append(full)
        # Labels so far are anchor-local positions; translate them to the
        # catalog index of the representative anchor so cluster ids are
        # deterministic catalog items.
        levels = [anchors[lvl] for lvl in levels]

    # --- assemble skeleton: root + one node per (level, cluster) -------
    skeleton_parent: List[int] = [-1]
    skeleton_names: List[str] = ["<root>"]
    node_of: Dict[Tuple[int, int], int] = {}
    for depth, labels in enumerate(levels, start=1):
        for rep in np.unique(labels):
            node_of[(depth, int(rep))] = len(skeleton_parent)
            if depth == 1:
                skeleton_parent.append(ROOT)
            else:
                up = int(levels[depth - 2][rep])
                skeleton_parent.append(node_of[(depth - 1, up)])
            skeleton_names.append(f"cat-{depth}-{int(rep)}")

    collapsed, collapsed_names, kept = collapse_single_child_chains(
        skeleton_parent, skeleton_names
    )
    new_id = {int(old): new for new, old in enumerate(kept)}

    # --- attach items last, in dense order -----------------------------
    bottom_depth = len(levels)
    bottom = levels[-1]
    n_interior = collapsed.size
    parent = np.concatenate(
        [
            collapsed,
            np.array(
                [
                    _surviving_skeleton_parent(
                        node_of[(bottom_depth, int(bottom[i]))],
                        skeleton_parent,
                        new_id,
                    )
                    for i in range(n)
                ],
                dtype=np.int64,
            ),
        ]
    )
    all_names: Optional[List[str]] = None
    if collapsed_names is not None:
        all_names = collapsed_names + (
            names if names is not None else [f"item-{i}" for i in range(n)]
        )
    learned = Taxonomy(parent, names=all_names)
    if learned.n_items != n or not np.array_equal(
        learned.items, np.arange(n_interior, n_interior + n)
    ):  # pragma: no cover - structural invariant of the assembly above
        raise TaxonomyError("learned tree permuted dense item indices")
    return learned


def _surviving_skeleton_parent(
    node: int, skeleton_parent: Sequence[int], new_id: Mapping[int, int]
) -> int:
    """New id of *node*, or of its nearest surviving ancestor."""
    while node not in new_id:
        node = int(skeleton_parent[node])
    return new_id[node]


def refine_placements(
    taxonomy: Taxonomy,
    item_factors: np.ndarray,
    *,
    min_gain: float = 0.05,
    max_moves: Optional[int] = None,
) -> Dict[int, int]:
    """Find items that drifted away from their category.

    For every item, compare its cosine similarity to its own category's
    leave-one-out centroid against the best other category.  Items whose
    improvement exceeds *min_gain* are proposed as moves, strongest
    improvements first (ties on the smallest item id, via the canonical
    :func:`repro.core.topk.top_k_pairs` order), capped at *max_moves*.
    A category is never drained below one remaining item, and singleton
    categories are left alone — :meth:`Taxonomy.replant` would reject
    emptying them.

    Returns a ``{dense item index: target category node}`` mapping
    suitable for :func:`replant_items`; empty when nothing drifted.

    Examples
    --------
    >>> import numpy as np
    >>> tax = Taxonomy([-1, 0, 0, 1, 1, 1, 2, 2])
    >>> factors = np.array(
    ...     [[1., 0.], [1., 0.], [0., 1.], [0., 1.], [0., 1.]])
    >>> refine_placements(tax, factors, min_gain=0.1)
    {2: 2}
    """
    item_factors = np.asarray(item_factors, dtype=np.float64)
    nodes, centroids, counts = category_centroids(taxonomy, item_factors)
    parents = taxonomy.parent[taxonomy.items]
    own = np.searchsorted(nodes, parents)

    sums = centroids * counts[:, None]
    own_counts = counts[own]
    movable = own_counts > 1
    loo = np.zeros_like(item_factors)
    loo[movable] = (
        sums[own[movable]] - item_factors[movable]
    ) / (own_counts[movable, None] - 1)

    unit_items = _unit_rows(item_factors)
    sims = unit_items @ _unit_rows(centroids).T
    own_sim = np.einsum("ij,ij->i", unit_items, _unit_rows(loo))
    sims[np.arange(sims.shape[0]), own] = -np.inf
    best = np.argmax(sims, axis=1)
    gain = sims[np.arange(sims.shape[0]), best] - own_sim
    gain[~movable] = -np.inf

    # Imported lazily: repro.core's package init imports the factor stack,
    # which imports this package — module-level would be circular.
    from repro.core.topk import top_k_pairs

    candidates = np.flatnonzero(gain > min_gain)
    if candidates.size == 0:
        return {}
    cap = candidates.size if max_moves is None else min(max_moves, candidates.size)
    ranked = top_k_pairs(candidates, gain[candidates], cap)

    remaining = counts.copy()
    moves: Dict[int, int] = {}
    for item in ranked:
        item = int(item)
        if remaining[own[item]] <= 1:
            continue
        remaining[own[item]] -= 1
        moves[item] = int(nodes[best[item]])
    return moves


def replant_items(
    taxonomy: Taxonomy,
    factors: "FactorSet",
    moves: Mapping[int, int],
) -> "Tuple[Taxonomy, FactorSet]":
    """Apply *moves* to the tree **without changing any effective factor**.

    The tree part delegates to :meth:`Taxonomy.replant` (node ids and
    dense item indices preserved).  The factor part rewrites each moved
    leaf's own offset so that the sum along its *new* ancestor chain
    equals its old effective factor — for ``w``, ``w_next`` and the bias
    alike.  Published rankings therefore do not move at the swap; the
    new chains only change how *future* training updates generalize.

    Returns the replanted taxonomy and a new :class:`FactorSet` (inputs
    are untouched).
    """
    # Imported lazily: repro.core.factors imports this package's tree
    # module, so a module-level import here would be circular.
    from repro.core.factors import KIND_NEXT, FactorSet

    replanted = taxonomy.replant(moves)
    shifted = FactorSet.from_arrays(
        replanted,
        factors.user.copy(),
        factors.w.copy(),
        factors.bias.copy(),
        None if factors.w_next is None else factors.w_next.copy(),
        levels=factors.levels,
        init_scale=factors.init_scale,
    )
    items = np.asarray(sorted(int(i) for i in moves), dtype=np.int64)
    leaves = taxonomy.nodes_of_items(items)
    shifted.w[leaves] += factors.effective_items(items) - shifted.effective_items(items)
    shifted.bias[leaves] += factors.bias_of_items(items) - shifted.bias_of_items(items)
    if factors.w_next is not None:
        shifted.w_next[leaves] += factors.effective_items(
            items, kind=KIND_NEXT
        ) - shifted.effective_items(items, kind=KIND_NEXT)
    return replanted, shifted


def bootstrap_taxonomy(
    log,
    *,
    factors: int = 16,
    epochs: int = 5,
    branching: int = 8,
    max_depth: int = 3,
    seed: int = 0,
    sample: Optional[int] = None,
    item_names: Optional[Sequence[str]] = None,
) -> Taxonomy:
    """Learn a taxonomy for a transaction log that has none.

    Trains the paper's flat ``MF`` baseline on *log* (serially, seeded),
    then clusters the resulting effective item factors with
    :func:`learn_taxonomy`.  The returned tree's dense item indices are
    exactly the log's item indices, so the log can immediately train a
    taxonomy-aware :class:`~repro.core.tf_model.TaxonomyFactorModel` and
    serve through every ``retrieval=`` mode.
    """
    # Imported lazily: repro.train pulls in the model stack, which imports
    # this package — a module-level import would be circular.
    from repro.core.mf_model import MFModel
    from repro.train.serial import SerialTrainer

    model = MFModel.from_n_items(
        log.n_items, factors=factors, epochs=epochs, seed=seed
    )
    SerialTrainer(model).train(log)
    return learn_taxonomy(
        model.effective_item_factors(),
        branching=branching,
        max_depth=max_depth,
        seed=seed,
        names=item_names,
        sample=sample,
    )
