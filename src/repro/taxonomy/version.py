"""Taxonomy identity: content digests and lineage revisions.

The stack used to treat the taxonomy as a construction-time constant —
one immutable tree, known before training, never mentioned again.  Once
trees are *learned* (:mod:`repro.taxonomy.learn`) and *refined* mid-stream
(:meth:`repro.streaming.pipeline.StreamingPipeline`), every layer that
stores or ships factors needs to say **which** tree they were computed
against.  A :class:`TaxonomyVersion` is that statement:

* ``digest`` — SHA-256 over the parent-pointer array, so two trees with
  the same structure have the same digest regardless of how they were
  built (names are cosmetic and deliberately excluded);
* ``n_nodes`` / ``n_items`` — the shape every factor matrix must match;
* ``revision`` — a monotonically increasing lineage counter, bumped by
  :func:`~repro.taxonomy.extend.add_items` and
  :meth:`~repro.taxonomy.tree.Taxonomy.replant`, distinguishing
  successive generations of an evolving catalog even when a refinement
  happens to round-trip to an earlier structure.

:class:`~repro.serving.bundle.ModelBundle` manifests persist the version
of the tree they ship, :class:`~repro.serving.service.ModelState`
snapshots carry the version they serve, and
:class:`~repro.serving.index.SubtreeIndex` records the version it was
built from — so a (model, taxonomy) generation is checkable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class TaxonomyVersion:
    """Identity of one taxonomy generation: content digest plus lineage.

    Examples
    --------
    >>> from repro.taxonomy import Taxonomy
    >>> v = Taxonomy([-1, 0, 0]).version
    >>> (v.n_nodes, v.n_items, v.revision)
    (3, 2, 0)
    >>> v == TaxonomyVersion.from_dict(v.as_dict())
    True
    """

    digest: str
    n_nodes: int
    n_items: int
    revision: int = 0

    @property
    def short(self) -> str:
        """First 12 hex characters of the digest (log-friendly)."""
        return self.digest[:12]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (what bundle manifests persist)."""
        return {
            "digest": self.digest,
            "n_nodes": int(self.n_nodes),
            "n_items": int(self.n_items),
            "revision": int(self.revision),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TaxonomyVersion":
        """Inverse of :meth:`as_dict`."""
        return cls(
            digest=str(payload["digest"]),
            n_nodes=int(payload["n_nodes"]),
            n_items=int(payload["n_items"]),
            revision=int(payload.get("revision", 0)),
        )

    def same_structure(self, other: "TaxonomyVersion") -> bool:
        """Whether two versions describe structurally identical trees.

        Revisions may differ: a lineage counter only orders generations,
        it does not change what the tree *is*.
        """
        return self.digest == other.digest

    def __str__(self) -> str:
        return (
            f"taxonomy@{self.short} (rev {self.revision}, "
            f"{self.n_items} items / {self.n_nodes} nodes)"
        )
