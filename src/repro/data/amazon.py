"""Loading public Amazon-style datasets into the library's structures.

The paper's log is proprietary, but public Amazon category datasets carry
the same two ingredients: per-item category paths (metadata files) and
per-user timestamped interactions (review files).  This module turns those
into a :class:`~repro.taxonomy.tree.Taxonomy` plus a
:class:`~repro.data.transactions.TransactionLog`:

* interactions of one user on the same day form one transaction (basket),
* transactions are ordered by timestamp and timestamps are then dropped,
  exactly like the paper's anonymization step (Sec. 7.1).
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.data.transactions import TransactionLog
from repro.taxonomy.io import parse_category_records
from repro.taxonomy.tree import Taxonomy

PathLike = Union[str, Path]

#: Seconds per day — interactions closer than this form one basket.
DAY = 86400


def parse_interaction_records(
    records: Iterable[Union[str, dict]],
    item_ids: Dict[str, int],
    n_items: int,
    user_field: str = "reviewerID",
    item_field: str = "asin",
    time_field: str = "unixReviewTime",
    basket_window: int = DAY,
) -> Tuple[TransactionLog, Dict[str, int]]:
    """Group per-user interactions into ordered baskets.

    Parameters
    ----------
    records:
        JSON strings or decoded dicts with user, item, and unix-time fields.
    item_ids:
        Mapping from the catalog item identifier to the dense item index
        (from :func:`repro.taxonomy.io.parse_category_records`).  Records
        whose item is not in the mapping are skipped.
    n_items:
        Item-universe size (``taxonomy.n_items``).
    basket_window:
        Interactions within this many seconds of the basket's first event
        join the same transaction.

    Returns
    -------
    (log, user_ids):
        The transaction log and the mapping from the original user
        identifier to the dense user index.
    """
    events: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
    for record in records:
        if isinstance(record, str):
            record = record.strip()
            if not record:
                continue
            record = json.loads(record)
        user = record.get(user_field)
        item_key = record.get(item_field)
        when = record.get(time_field)
        if user is None or item_key is None or when is None:
            continue
        item = item_ids.get(str(item_key))
        if item is None:
            continue
        events[str(user)].append((int(when), int(item)))

    user_ids: Dict[str, int] = {}
    transactions: List[List[List[int]]] = []
    for user in sorted(events):
        timeline = sorted(events[user])
        baskets: List[List[int]] = []
        basket_start: Optional[int] = None
        current: List[int] = []
        for when, item in timeline:
            if basket_start is None or when - basket_start > basket_window:
                if current:
                    baskets.append(sorted(set(current)))
                current = [item]
                basket_start = when
            else:
                current.append(item)
        if current:
            baskets.append(sorted(set(current)))
        if baskets:
            user_ids[user] = len(transactions)
            transactions.append(baskets)

    return TransactionLog(transactions, n_items=n_items), user_ids


def load_amazon_dataset(
    metadata_path: PathLike,
    reviews_path: PathLike,
    user_field: str = "reviewerID",
    item_field: str = "asin",
    time_field: str = "unixReviewTime",
) -> Tuple[Taxonomy, TransactionLog, Dict[str, int], Dict[str, int]]:
    """Load an Amazon metadata + reviews file pair.

    Returns ``(taxonomy, log, item_ids, user_ids)``.
    """
    with open(metadata_path, "r", encoding="utf-8") as handle:
        taxonomy, item_ids = parse_category_records(handle, id_field=item_field)
    with open(reviews_path, "r", encoding="utf-8") as handle:
        log, user_ids = parse_interaction_records(
            handle,
            item_ids,
            n_items=taxonomy.n_items,
            user_field=user_field,
            item_field=item_field,
            time_field=time_field,
        )
    return taxonomy, log, item_ids, user_ids
