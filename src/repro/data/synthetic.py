"""Synthetic purchase-log generator.

The paper evaluates on a proprietary Yahoo! shopping log (Sec. 7.1).  This
module is the documented substitute (DESIGN.md): a generative simulator that
produces the statistical phenomena the TF model exploits, at any scale:

* **hierarchical long-term interests** — each user's purchases concentrate
  in a few leaf categories reached by descending the taxonomy from a
  user-specific distribution over top-level categories;
* **heavy-tailed popularity** — Zipf item popularity inside each leaf
  category (Fig. 5c's shape);
* **sparsity** — transaction and basket counts are Poisson with small means
  (the paper's users average 2.3 purchases);
* **short-term dynamics** — a leaf-category transition kernel (camera →
  flash-memory style) drives a configurable share of transactions from the
  *previous* transactions' categories;
* **cold start** — a fraction of items is "late": they can only appear in
  the later part of each user's sequence, so most of their purchases land in
  the test period after a temporal split;
* **repeat purchases** — occasionally a user re-buys an earlier item, which
  the evaluation protocol must filter (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import random_taxonomy
from repro.taxonomy.tree import ROOT, Taxonomy
from repro.utils.config import SyntheticConfig
from repro.utils.rng import ensure_rng

#: Fraction of a user's sequence after which "late" items become available.
LATE_PHASE_START = 0.6


class _WeightedSampler:
    """Cheap repeated weighted sampling over a fixed small population."""

    __slots__ = ("values", "cdf")

    def __init__(self, values: np.ndarray, weights: np.ndarray):
        self.values = values
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have positive mass")
        self.cdf = np.cumsum(weights) / total

    def draw(self, rng: np.random.Generator) -> int:
        return int(self.values[np.searchsorted(self.cdf, rng.random())])

    def draw_distinct(self, rng: np.random.Generator, k: int) -> List[int]:
        """Up to *k* distinct draws (rejection sampling, bounded attempts)."""
        picked: List[int] = []
        seen = set()
        attempts = 0
        while len(picked) < k and attempts < 12 * k:
            value = self.draw(rng)
            attempts += 1
            if value not in seen:
                seen.add(value)
                picked.append(value)
        return picked


@dataclass
class SyntheticDataset:
    """A generated dataset plus the ground truth that produced it.

    The ground-truth fields (focus categories, transition kernel, late
    items) let tests assert that models recover planted structure.
    """

    taxonomy: Taxonomy
    log: TransactionLog
    config: SyntheticConfig
    leaf_of_item: np.ndarray
    late_items: np.ndarray
    transition_kernel: Dict[int, np.ndarray]
    user_focus: List[List[int]] = field(repr=False, default_factory=list)

    @property
    def n_users(self) -> int:
        return self.log.n_users

    @property
    def n_items(self) -> int:
        return self.taxonomy.n_items


def generate_dataset(config: Optional[SyntheticConfig] = None) -> SyntheticDataset:
    """Generate a taxonomy and a purchase log according to *config*."""
    if config is None:
        config = SyntheticConfig()
    rng = ensure_rng(config.seed)

    taxonomy = random_taxonomy(
        config.branching,
        items_per_leaf=config.items_per_leaf,
        jitter=0.2,
        seed=rng,
    )
    item_nodes = taxonomy.items
    leaf_of_item = taxonomy.parent[item_nodes]
    leaf_nodes = np.unique(leaf_of_item)
    top_nodes = taxonomy.children(ROOT)

    late_items = _pick_late_items(taxonomy, config, rng)
    early_samplers, all_samplers = _build_item_samplers(
        taxonomy, leaf_nodes, leaf_of_item, late_items, config
    )
    kernel = _build_transition_kernel(taxonomy, leaf_nodes, config, rng)
    leaf_list = {int(n): i for i, n in enumerate(leaf_nodes)}

    transactions: List[List[List[int]]] = []
    user_focus: List[List[int]] = []
    for _ in range(config.n_users):
        focus, focus_sampler = _sample_user_focus(
            taxonomy, top_nodes, config, rng
        )
        user_focus.append(focus)
        n_txns = 1 + int(rng.poisson(max(config.mean_transactions - 1.0, 0.0)))
        late_from = int(np.ceil(LATE_PHASE_START * n_txns))
        history: List[int] = []
        prev_leaf: Optional[int] = None
        user_txns: List[List[int]] = []
        for t in range(n_txns):
            if prev_leaf is not None and rng.random() < config.transition_strength:
                leaf = int(rng.choice(kernel[prev_leaf]))
            else:
                leaf = focus_sampler.draw(rng)
            samplers = all_samplers if t >= late_from else early_samplers
            sampler = samplers.get(leaf)
            if sampler is None:
                continue
            size = 1 + int(rng.poisson(max(config.mean_basket_size - 1.0, 0.0)))
            basket = sampler.draw_distinct(rng, size)
            if history and rng.random() < config.repeat_probability:
                basket.append(int(rng.choice(history)))
            basket = sorted(set(basket))
            if not basket:
                continue
            user_txns.append(basket)
            history.extend(basket)
            prev_leaf = leaf
        if not user_txns:
            # Guarantee every user has at least one transaction.
            leaf = focus_sampler.draw(rng)
            sampler = all_samplers.get(leaf) or next(iter(all_samplers.values()))
            user_txns.append(sampler.draw_distinct(rng, 1))
        transactions.append(user_txns)

    log = TransactionLog(transactions, n_items=taxonomy.n_items)
    return SyntheticDataset(
        taxonomy=taxonomy,
        log=log,
        config=config,
        leaf_of_item=leaf_of_item,
        late_items=late_items,
        transition_kernel=kernel,
        user_focus=user_focus,
    )


# ----------------------------------------------------------------------
# Generator internals
# ----------------------------------------------------------------------
def _pick_late_items(
    taxonomy: Taxonomy, config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    """Choose the cold-start ("late release") item subset."""
    n_items = taxonomy.n_items
    n_late = int(round(config.new_item_fraction * n_items))
    if n_late == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(rng.choice(n_items, size=n_late, replace=False))


def _build_item_samplers(
    taxonomy: Taxonomy,
    leaf_nodes: np.ndarray,
    leaf_of_item: np.ndarray,
    late_items: np.ndarray,
    config: SyntheticConfig,
) -> Tuple[Dict[int, _WeightedSampler], Dict[int, _WeightedSampler]]:
    """Per-leaf Zipf samplers; the "early" variant excludes late items."""
    late_mask = np.zeros(taxonomy.n_items, dtype=bool)
    late_mask[late_items] = True
    early: Dict[int, _WeightedSampler] = {}
    full: Dict[int, _WeightedSampler] = {}
    for leaf in leaf_nodes:
        items = np.flatnonzero(leaf_of_item == leaf)
        ranks = np.arange(1, items.size + 1, dtype=np.float64)
        weights = ranks ** (-config.popularity_exponent)
        full[int(leaf)] = _WeightedSampler(items, weights)
        early_weights = np.where(late_mask[items], 0.0, weights)
        if early_weights.sum() > 0:
            early[int(leaf)] = _WeightedSampler(items, early_weights)
        else:
            early[int(leaf)] = full[int(leaf)]
    return early, full


def _build_transition_kernel(
    taxonomy: Taxonomy,
    leaf_nodes: np.ndarray,
    config: SyntheticConfig,
    rng: np.random.Generator,
) -> Dict[int, np.ndarray]:
    """Related-category kernel: prefers siblings, then cousins, then random.

    This plants the "camera → flash memory" structure of Sec. 1: related
    categories are *near each other in the taxonomy*, which is exactly the
    statistical tie the TF Markov term can exploit and a flat model cannot.
    """
    kernel: Dict[int, np.ndarray] = {}
    leaf_set = set(int(n) for n in leaf_nodes)
    for leaf in leaf_nodes:
        leaf = int(leaf)
        sibs = [int(s) for s in taxonomy.siblings(leaf) if int(s) in leaf_set]
        grand = taxonomy.ancestor_at_height(leaf, 2)
        cousins = [
            int(c)
            for uncle in taxonomy.children(grand)
            for c in taxonomy.children(int(uncle))
            if int(c) in leaf_set and int(c) != leaf
        ]
        related: List[int] = []
        for _ in range(config.transitions_per_leaf):
            roll = rng.random()
            if roll < 0.5 and sibs:
                related.append(int(rng.choice(sibs)))
            elif roll < 0.8 and cousins:
                related.append(int(rng.choice(cousins)))
            else:
                related.append(int(rng.choice(leaf_nodes)))
        kernel[leaf] = np.asarray(related, dtype=np.int64)
    return kernel


def _sample_user_focus(
    taxonomy: Taxonomy,
    top_nodes: np.ndarray,
    config: SyntheticConfig,
    rng: np.random.Generator,
) -> Tuple[List[int], _WeightedSampler]:
    """A user's focus leaf categories and the sampler over them.

    Interests concentrate: a Dirichlet over top-level categories selects
    where the user shops, then each focus leaf is found by a uniform random
    descent.  Focus weights decay geometrically so one or two categories
    dominate, as in real shopping logs.
    """
    alpha = np.full(top_nodes.size, config.interest_concentration)
    top_weights = rng.dirichlet(alpha)
    top_sampler = _WeightedSampler(top_nodes, top_weights)
    n_focus = 2 + int(rng.poisson(1.5))
    focus: List[int] = []
    seen = set()
    attempts = 0
    while len(focus) < n_focus and attempts < 8 * n_focus:
        attempts += 1
        node = top_sampler.draw(rng)
        while taxonomy.children(node).size and not taxonomy.is_leaf(
            int(taxonomy.children(node)[0])
        ):
            node = int(rng.choice(taxonomy.children(node)))
        if node not in seen:
            seen.add(node)
            focus.append(node)
    if not focus:
        focus = [int(taxonomy.parent[taxonomy.items[0]])]
    weights = 0.55 ** np.arange(len(focus), dtype=np.float64)
    return focus, _WeightedSampler(np.asarray(focus, dtype=np.int64), weights)
