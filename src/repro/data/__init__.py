"""Data substrate: transaction logs, synthetic generation, splits, stats."""

from repro.data.amazon import load_amazon_dataset, parse_interaction_records
from repro.data.split import (
    TrainTestSplit,
    first_transactions,
    holdout_last,
    train_test_split,
)
from repro.data.stats import (
    DatasetSummary,
    distinct_items_per_user,
    gini,
    histogram,
    item_popularity,
    new_items_per_user,
    summarize,
)
from repro.data.synthetic import SyntheticDataset, generate_dataset
from repro.data.transactions import TransactionLog

__all__ = [
    "TransactionLog",
    "SyntheticDataset",
    "generate_dataset",
    "TrainTestSplit",
    "train_test_split",
    "holdout_last",
    "first_transactions",
    "DatasetSummary",
    "summarize",
    "distinct_items_per_user",
    "new_items_per_user",
    "item_popularity",
    "histogram",
    "gini",
    "load_amazon_dataset",
    "parse_interaction_records",
]
