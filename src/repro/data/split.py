"""Train/test splitting per the paper's evaluation protocol (Sec. 7.1).

For each user, a random fraction of transactions — drawn from a Gaussian
with mean ``mu`` and a small standard deviation — goes to training; all
*subsequent* transactions go to test, so the split is temporal per user.
``mu`` simulates sparsity: 0.25 (sparse) / 0.50 / 0.75 (dense).

Repeat purchases (test items the user already bought in training) are
removed from the test transactions, because the system's goal is to help
users *discover* items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.data.transactions import TransactionLog
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_non_negative


@dataclass
class TrainTestSplit:
    """A per-user temporal split of a :class:`TransactionLog`.

    ``train`` and ``test`` keep the same user numbering as the source log;
    users whose whole history landed in training simply have an empty test
    list.
    """

    train: TransactionLog
    test: TransactionLog

    @property
    def n_users(self) -> int:
        return self.train.n_users

    def test_users(self) -> np.ndarray:
        """Users that have at least one (non-empty) test transaction."""
        users = [
            u
            for u in range(self.test.n_users)
            if len(self.test.user_transactions(u)) > 0
        ]
        return np.asarray(users, dtype=np.int64)

    def new_items(self) -> np.ndarray:
        """Items that appear in test but never in train (cold-start set)."""
        train_items = set(self.train.purchased_items().tolist())
        test_items = set(self.test.purchased_items().tolist())
        return np.asarray(sorted(test_items - train_items), dtype=np.int64)


def train_test_split(
    log: TransactionLog,
    mu: float = 0.5,
    sigma: float = 0.05,
    remove_repeats: bool = True,
    seed: RngLike = 0,
) -> TrainTestSplit:
    """Split *log* per user at a Gaussian-random temporal cut.

    Parameters
    ----------
    log:
        Full purchase log.
    mu, sigma:
        Mean and standard deviation of the per-user training fraction.  The
        paper uses ``mu`` in {0.25, 0.5, 0.75} and ``sigma = 0.05``.
    remove_repeats:
        Drop test items the user already bought in training (the paper's
        discovery-oriented filtering).  Empty test transactions are removed.
    seed:
        Seed for the per-user cut fractions.
    """
    check_fraction("mu", mu)
    check_non_negative("sigma", sigma)
    rng = ensure_rng(seed)

    train_rows: List[List[List[int]]] = []
    test_rows: List[List[List[int]]] = []
    for user in range(log.n_users):
        txns = log.user_transactions(user)
        fraction = float(np.clip(rng.normal(mu, sigma), 0.0, 1.0))
        n_train = int(round(fraction * len(txns)))
        n_train = min(max(n_train, 1), len(txns))
        train_part = [basket.tolist() for basket in txns[:n_train]]
        test_part = [basket.tolist() for basket in txns[n_train:]]
        if remove_repeats and test_part:
            bought: Set[int] = set()
            for basket in train_part:
                bought.update(basket)
            filtered: List[List[int]] = []
            for basket in test_part:
                kept = [item for item in basket if item not in bought]
                if kept:
                    filtered.append(kept)
                # Items seen in earlier *test* transactions are also repeats
                # from the perspective of later test transactions.
                bought.update(basket)
            test_part = filtered
        train_rows.append(train_part)
        test_rows.append(test_part)

    return TrainTestSplit(
        train=TransactionLog(train_rows, n_items=log.n_items),
        test=TransactionLog(test_rows, n_items=log.n_items),
    )


def holdout_last(
    log: TransactionLog, count: int = 1
) -> Tuple[TransactionLog, TransactionLog]:
    """Split off each user's last *count* transactions (cross-validation).

    The paper uses the last ``T = 1`` training transactions for validation.
    Users with fewer than ``count + 1`` transactions keep everything in the
    first part and get an empty holdout.
    """
    check_non_negative("count", count)
    head_rows: List[List[List[int]]] = []
    tail_rows: List[List[List[int]]] = []
    for user in range(log.n_users):
        txns = [basket.tolist() for basket in log.user_transactions(user)]
        if count == 0 or len(txns) <= count:
            head_rows.append(txns)
            tail_rows.append([])
        else:
            head_rows.append(txns[:-count])
            tail_rows.append(txns[-count:])
    return (
        TransactionLog(head_rows, n_items=log.n_items),
        TransactionLog(tail_rows, n_items=log.n_items),
    )


def first_transactions(log: TransactionLog, count: int = 1) -> TransactionLog:
    """Keep only each user's first *count* transactions.

    The paper reports test error on the first ``T = 1`` test transaction of
    each user.
    """
    check_non_negative("count", count)
    rows = [
        [basket.tolist() for basket in log.user_transactions(u)[:count]]
        for u in range(log.n_users)
    ]
    return TransactionLog(rows, n_items=log.n_items)
