"""Dataset characteristics — the quantities plotted in Fig. 5.

* Fig. 5(a): histogram of distinct items bought per user (train),
* Fig. 5(b): histogram of *new* items bought per user (test),
* Fig. 5(c): item-popularity histogram (number of purchases per item).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.data.transactions import TransactionLog


def distinct_items_per_user(log: TransactionLog) -> np.ndarray:
    """Number of distinct items each user bought (length ``n_users``)."""
    return np.asarray(
        [log.user_items(u).size for u in range(log.n_users)], dtype=np.int64
    )


def new_items_per_user(
    train: TransactionLog, test: TransactionLog
) -> np.ndarray:
    """Distinct test items per user that the user did not buy in training."""
    if train.n_users != test.n_users:
        raise ValueError("train and test must cover the same users")
    counts = np.zeros(train.n_users, dtype=np.int64)
    for user in range(train.n_users):
        seen = set(train.user_items(user).tolist())
        fresh = {
            int(item)
            for basket in test.user_transactions(user)
            for item in basket
            if int(item) not in seen
        }
        counts[user] = len(fresh)
    return counts


def item_popularity(log: TransactionLog) -> np.ndarray:
    """Number of purchase events per item (length ``n_items``)."""
    return log.item_counts()


def histogram(
    values: np.ndarray, max_value: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Integer histogram over ``0 .. max_value`` (clipping larger values).

    Returns ``(bin_values, counts)``, matching the paper's truncated x-axes.
    """
    values = np.asarray(values, dtype=np.int64)
    clipped = np.clip(values, 0, max_value)
    counts = np.bincount(clipped, minlength=max_value + 1)
    return np.arange(max_value + 1), counts


@dataclass
class DatasetSummary:
    """Headline statistics matching the prose of Sec. 7.1."""

    n_users: int
    n_items: int
    n_transactions: int
    n_purchases: int
    purchases_per_user: float
    distinct_items_per_user: float
    gini_popularity: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_transactions": self.n_transactions,
            "n_purchases": self.n_purchases,
            "purchases_per_user": self.purchases_per_user,
            "distinct_items_per_user": self.distinct_items_per_user,
            "gini_popularity": self.gini_popularity,
        }


def summarize(log: TransactionLog) -> DatasetSummary:
    """Compute a :class:`DatasetSummary` for *log*."""
    popularity = item_popularity(log)
    distinct = distinct_items_per_user(log)
    return DatasetSummary(
        n_users=log.n_users,
        n_items=log.n_items,
        n_transactions=log.n_transactions,
        n_purchases=log.n_purchases,
        purchases_per_user=log.n_purchases / max(log.n_users, 1),
        distinct_items_per_user=float(distinct.mean()) if distinct.size else 0.0,
        gini_popularity=gini(popularity),
    )


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector.

    Quantifies the heavy tail of Fig. 5(c): 0 = uniform popularity,
    → 1 = all purchases on one item.
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    total = counts.sum()
    if total <= 0 or counts.size == 0:
        return 0.0
    n = counts.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * counts).sum() / (n * total)) - (n + 1.0) / n)
