"""Purchase logs as per-user sequences of transactions.

The paper's input (Sec. 7.1) is a fully anonymized log: users are dense
integers, timestamps are dropped, and only the *order* of each user's
transactions is kept.  :class:`TransactionLog` mirrors that: for every user
it stores an ordered list of transactions, each transaction being the set of
items bought at that time step (the ``B_t`` of the model).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple, Union

import numpy as np

PathLike = Union[str, Path]
Basket = np.ndarray  # 1-d int64 array of dense item indices


class TransactionLog:
    """An ordered purchase history for a population of users.

    Parameters
    ----------
    transactions:
        ``transactions[u]`` is user ``u``'s ordered list of baskets; each
        basket is a non-empty sequence of dense item indices.
    n_items:
        Size of the item universe.  Defaults to one more than the largest
        item index present, but should normally be passed explicitly (from
        ``taxonomy.n_items``) so that never-purchased items stay in the
        candidate set.
    """

    def __init__(
        self,
        transactions: Sequence[Sequence[Sequence[int]]],
        n_items: int = None,
    ):
        cleaned: List[List[Basket]] = []
        max_item = -1
        for u, user_txns in enumerate(transactions):
            user_list: List[Basket] = []
            for t, basket in enumerate(user_txns):
                arr = np.unique(np.asarray(list(basket), dtype=np.int64))
                if arr.size == 0:
                    raise ValueError(f"user {u} transaction {t} is empty")
                if arr.min() < 0:
                    raise ValueError(
                        f"user {u} transaction {t} has a negative item index"
                    )
                max_item = max(max_item, int(arr.max()))
                arr.flags.writeable = False
                user_list.append(arr)
            cleaned.append(user_list)
        if n_items is None:
            n_items = max_item + 1
        elif max_item >= n_items:
            raise ValueError(
                f"item index {max_item} out of range for n_items={n_items}"
            )
        self._transactions = cleaned
        self._n_items = int(n_items)

    @classmethod
    def from_baskets(
        cls,
        transactions: Sequence[Sequence[Basket]],
        n_items: int,
    ) -> "TransactionLog":
        """Trusted fast path: adopt pre-validated baskets without copying.

        Every basket must already be a deduplicated, sorted, read-only
        int64 array with entries in ``[0, n_items)`` — the invariant
        produced by this class and by
        :meth:`repro.streaming.events.PurchaseEvent.basket`.  The
        streaming snapshot path publishes a fresh log on every hot-swap;
        re-validating tens of thousands of baskets there would dominate
        the publish latency, so callers that only ever append baskets
        taken from those sources may skip it.
        """
        log = cls.__new__(cls)
        log._transactions = [list(user_txns) for user_txns in transactions]
        log._n_items = int(n_items)
        return log

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of users (including users with no transactions)."""
        return len(self._transactions)

    @property
    def n_items(self) -> int:
        """Size of the item universe."""
        return self._n_items

    @property
    def n_transactions(self) -> int:
        """Total number of baskets across all users."""
        return sum(len(txns) for txns in self._transactions)

    @property
    def n_purchases(self) -> int:
        """Total number of (user, time, item) purchase events."""
        return sum(
            basket.size for txns in self._transactions for basket in txns
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def user_transactions(self, user: int) -> List[Basket]:
        """The ordered baskets of *user* (do not mutate)."""
        return self._transactions[user]

    def basket(self, user: int, t: int) -> Basket:
        """The basket ``B_t`` of *user* (read-only array)."""
        return self._transactions[user][t]

    def user_items(self, user: int) -> np.ndarray:
        """Sorted distinct items ever bought by *user*."""
        txns = self._transactions[user]
        if not txns:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(txns))

    def iter_baskets(self) -> Iterator[Tuple[int, int, Basket]]:
        """Yield ``(user, t, basket)`` over the whole log."""
        for u, txns in enumerate(self._transactions):
            for t, basket in enumerate(txns):
                yield u, t, basket

    def purchase_triples(self) -> np.ndarray:
        """All purchase events as an ``(n_purchases, 3)`` array of
        ``(user, t, item)`` rows — the sampling units of BPR training."""
        rows: List[np.ndarray] = []
        for u, t, basket in self.iter_baskets():
            block = np.empty((basket.size, 3), dtype=np.int64)
            block[:, 0] = u
            block[:, 1] = t
            block[:, 2] = basket
            rows.append(block)
        if not rows:
            return np.empty((0, 3), dtype=np.int64)
        return np.concatenate(rows, axis=0)

    def item_counts(self) -> np.ndarray:
        """Number of purchase events per item (length ``n_items``)."""
        counts = np.zeros(self._n_items, dtype=np.int64)
        for _, _, basket in self.iter_baskets():
            counts[basket] += 1
        return counts

    def purchased_items(self) -> np.ndarray:
        """Sorted distinct items appearing anywhere in the log."""
        counts = self.item_counts()
        return np.flatnonzero(counts > 0)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def subset_users(self, users: Sequence[int]) -> "TransactionLog":
        """A log containing only the given users (renumbered densely)."""
        picked = [[b.tolist() for b in self._transactions[u]] for u in users]
        return TransactionLog(picked, n_items=self._n_items)

    def map_items(self, mapping: np.ndarray, n_items: int) -> "TransactionLog":
        """Apply an item renumbering; entries mapped to ``-1`` are dropped.

        Transactions left empty after the mapping are removed.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        out: List[List[List[int]]] = []
        for txns in self._transactions:
            user_out: List[List[int]] = []
            for basket in txns:
                mapped = mapping[basket]
                mapped = mapped[mapped >= 0]
                if mapped.size:
                    user_out.append(mapped.tolist())
            out.append(user_out)
        return TransactionLog(out, n_items=n_items)

    def to_lists(self) -> List[List[List[int]]]:
        """Plain nested-list copy (for serialization and tests)."""
        return [
            [basket.tolist() for basket in txns] for txns in self._transactions
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the log as one JSON object per user (JSON lines)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"n_items": self._n_items}) + "\n")
            for txns in self._transactions:
                handle.write(
                    json.dumps([basket.tolist() for basket in txns]) + "\n"
                )

    @classmethod
    def load(cls, path: PathLike) -> "TransactionLog":
        """Read a log written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            users = [json.loads(line) for line in handle if line.strip()]
        return cls(users, n_items=header["n_items"])

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_users

    def __repr__(self) -> str:
        return (
            f"TransactionLog(n_users={self.n_users}, n_items={self.n_items}, "
            f"n_transactions={self.n_transactions}, "
            f"n_purchases={self.n_purchases})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionLog):
            return NotImplemented
        if self._n_items != other._n_items or self.n_users != other.n_users:
            return False
        for mine, theirs in zip(self._transactions, other._transactions):
            if len(mine) != len(theirs):
                return False
            for a, b in zip(mine, theirs):
                if not np.array_equal(a, b):
                    return False
        return True
