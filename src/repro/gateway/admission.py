"""Admission control: bounded inflight work, load shedding, graceful drain.

The gateway admits a request only while the backend has capacity for it;
everything else is **shed** immediately with ``429 Too Many Requests``
and a ``Retry-After`` hint rather than queued into an unbounded backlog
(queueing past capacity only converts overload into latency — the
closed-loop load generator in :mod:`repro.gateway.loadgen` makes that
visible as a p99 cliff).

Two cooperating mechanisms, both single-event-loop state (no locks —
every transition happens between ``await`` points on one loop):

* **inflight bound** — :meth:`AdmissionController.slot` admits at most
  ``max_inflight`` concurrent requests; beyond that :class:`Overloaded`
  is raised and the server answers 429.
* **drain** — :meth:`AdmissionController.drain` is the swap hook: it
  holds new arrivals (up to ``max_queued`` of them — they *wait*, they
  are not dropped), waits for the inflight count to reach zero, runs its
  body (the model publication), then releases the held arrivals.  A
  request therefore either completes entirely on the old generation or
  starts entirely on the new one: **0 stale, 0 dropped** across a swap.

Examples
--------
>>> import asyncio
>>> async def demo():
...     admission = AdmissionController(max_inflight=1)
...     async with admission.slot():
...         return admission.inflight
>>> asyncio.run(demo())
1
"""

from __future__ import annotations

import asyncio
import math
from contextlib import asynccontextmanager
from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["AdmissionController", "Overloaded"]


class Overloaded(RuntimeError):
    """The gateway is at capacity; the caller should retry later.

    Attributes
    ----------
    retry_after_s:
        Suggested client back-off in seconds; the server rounds it up
        to the integral ``Retry-After`` header.
    """

    def __init__(self, retry_after_s: float):
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            f"gateway at capacity; retry after {self.retry_after_s:.3f}s"
        )

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` value: delta-seconds, rounded up, at least 1."""
        return str(max(1, math.ceil(self.retry_after_s)))


class AdmissionController:
    """Bounded-inflight admission with shed-on-overload and drain.

    Parameters
    ----------
    max_inflight:
        Concurrent admitted requests; beyond this, :meth:`acquire`
        raises :class:`Overloaded` (zero sheds everything — useful in
        tests and for taking an instance out of rotation).
    max_queued:
        Arrivals allowed to *wait* during a drain.  Waiters beyond this
        are shed; the bound keeps a long publication from accumulating
        unbounded parked coroutines.
    retry_after_s:
        Back-off hint carried by :class:`Overloaded`.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; inflight
        gauge, shed counter, and drain counter are recorded into it.

    Notes
    -----
    All state transitions happen on one event loop between ``await``
    points, so no locking is needed; the class is **not** thread-safe
    and must only be touched from its loop.
    """

    def __init__(
        self,
        max_inflight: int = 128,
        max_queued: int = 256,
        retry_after_s: float = 0.05,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self.max_queued = int(max_queued)
        self.retry_after_s = float(retry_after_s)
        self._inflight = 0
        self._queued = 0
        self._draining = False
        #: Set while not draining; cleared to park new arrivals.
        self._resume = asyncio.Event()
        self._resume.set()
        #: Set while inflight == 0; a drain waits on it.
        self._idle = asyncio.Event()
        self._idle.set()
        self._drain_serial = asyncio.Lock()
        self._inflight_gauge = self._shed = self._drains = None
        if registry is not None:
            self._inflight_gauge = registry.gauge(
                "repro_gateway_inflight",
                help="Requests currently admitted past the gateway edge.",
            )
            self._shed = registry.counter(
                "repro_gateway_shed_total",
                help="Requests shed with 429 (inflight or drain queue full).",
            )
            self._drains = registry.counter(
                "repro_gateway_drains_total",
                help="Graceful drains completed around model publications.",
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently admitted."""
        return self._inflight

    @property
    def draining(self) -> bool:
        """Whether a drain is parked across the front door right now."""
        return self._draining

    @property
    def queued(self) -> int:
        """Arrivals parked behind an active drain."""
        return self._queued

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def acquire(self) -> None:
        """Admit one request or raise :class:`Overloaded`.

        During a drain, arrivals park on the resume event (bounded by
        ``max_queued``) instead of being rejected — the drain contract
        is 0 dropped.  After resume they re-check capacity normally.
        """
        while self._draining:
            if self._queued >= self.max_queued:
                self._count_shed()
                raise Overloaded(self.retry_after_s)
            self._queued += 1
            try:
                await self._resume.wait()
            finally:
                self._queued -= 1
        if self._inflight >= self.max_inflight:
            self._count_shed()
            raise Overloaded(self.retry_after_s)
        self._inflight += 1
        self._idle.clear()
        if self._inflight_gauge is not None:
            self._inflight_gauge.set(self._inflight)

    def release(self) -> None:
        """Return one admitted slot; wakes a waiting drain at zero."""
        self._inflight -= 1
        if self._inflight_gauge is not None:
            self._inflight_gauge.set(self._inflight)
        if self._inflight <= 0:
            self._idle.set()

    @asynccontextmanager
    async def slot(self):
        """``async with`` admission around one request's whole lifetime.

        The slot must span everything that reads backend state — compute
        *and* the generation stamp — so a drain can never interleave a
        publication into the middle of a request.
        """
        await self.acquire()
        try:
            yield
        finally:
            self.release()

    # ------------------------------------------------------------------
    # Drain (the swap hook)
    # ------------------------------------------------------------------
    @asynccontextmanager
    async def drain(self):
        """Quiesce the gateway, run the body, resume — 0 stale, 0 dropped.

        New arrivals park (bounded), the inflight count is awaited down
        to zero, then the body runs with the gateway exclusively quiet —
        the window a :class:`~repro.streaming.swap.HotSwapper`
        publication needs.  Concurrent drains serialize.
        """
        async with self._drain_serial:
            self._draining = True
            self._resume.clear()
            try:
                await self._idle.wait()
                yield
            finally:
                self._draining = False
                self._resume.set()
            if self._drains is not None:
                self._drains.inc()

    def _count_shed(self) -> None:
        if self._shed is not None:
            self._shed.inc()
