"""The asyncio HTTP front door over a service or a shard fleet.

:class:`Gateway` is the network edge ROADMAP item 1 asks for: a
stdlib-only HTTP/1.1 server (:func:`asyncio.start_server`) in front of
a :class:`~repro.serving.service.RecommenderService` or a
:class:`~repro.serving.sharding.ShardRouter`, wiring together the other
gateway pieces:

* ``POST /v1/recommend`` — single-user requests flow through the
  :class:`~repro.gateway.batching.Coalescer` into ``recommend_batch``
  pages; explicit ``{"users": [...]}`` batches go straight to the
  backend.  Every request holds an
  :class:`~repro.gateway.admission.AdmissionController` slot for its
  whole lifetime (429 + ``Retry-After`` beyond capacity).
* ``GET /healthz`` — liveness + generation + drain state, served
  outside admission so health checks keep working under overload.
* ``GET /metrics`` — the shared registry in Prometheus text format
  (:func:`repro.obs.export.to_prometheus_text`), also outside
  admission.
* :meth:`Gateway.swap_model` — the
  :class:`~repro.streaming.swap.HotSwapper` publication wrapped in an
  admission drain: inflight requests finish on the old generation, the
  fleet swaps while the edge is quiet, parked arrivals resume on the
  new one.  0 stale, 0 dropped.

Latency SLO methodology: per-route latency histograms
(``repro_gateway_request_latency_seconds{route=...}``) measure from
first byte parsed to response encoded — coalescing delay included — so
``bench_gateway.py``'s p99 gate prices the max-delay policy, not just
the scan.

The numpy scan never runs on the event loop: batches execute on the
gateway's thread pool via ``run_in_executor`` (the
:ref:`REP008 <analysis>` lint rule keeps blocking calls out of this
package's async code).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Optional, Tuple

from repro.gateway.admission import AdmissionController, Overloaded
from repro.gateway.batching import Coalescer
from repro.gateway.wire import (
    HttpError,
    Request,
    Response,
    encode_response,
    read_request,
)
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serving.sharding import DeadlineExceeded
from repro.utils.logging import get_logger

__all__ = ["Gateway", "GatewayConfig"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance.

    Attributes
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (read the real
        one from :attr:`Gateway.port` after :meth:`Gateway.start`).
    max_batch, max_delay_s:
        Coalescing policy (see :class:`~repro.gateway.batching.Coalescer`).
    max_inflight, max_queued, retry_after_s:
        Admission policy (see
        :class:`~repro.gateway.admission.AdmissionController`).
    default_k, max_k:
        Top-k depth when the request omits ``k``, and the per-request
        ceiling (oversized asks are a 400, not an accidental full-catalog
        scan).
    max_body_bytes:
        Request-body ceiling (413 beyond it).
    executor_workers:
        Threads the backend batches run on.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 32
    max_delay_s: float = 0.002
    max_inflight: int = 128
    max_queued: int = 256
    retry_after_s: float = 0.05
    default_k: int = 10
    max_k: int = 1000
    max_body_bytes: int = 1024 * 1024
    executor_workers: int = 4


class Gateway:
    """HTTP serving edge over a recommender backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.serving.service.RecommenderService` or
        :class:`~repro.serving.sharding.ShardRouter` (anything with the
        service's ``recommend_batch`` / ``swap_model`` / ``generation``
        contract).
    config:
        A :class:`GatewayConfig`; defaults throughout when omitted.
    registry:
        Metrics registry for the edge's counters and histograms; when
        omitted the backend's registry is reused so ``GET /metrics``
        exposes serving internals and edge metrics as one snapshot.
    tracer:
        Optional tracer: each recommend request mints a root
        ``http_request`` span, and the coalescer opens the batch's
        ``serve`` span under it in the worker thread, stitching
        socket-to-shard traces.
    store:
        Optional :class:`~repro.streaming.swap.CheckpointStore`; when
        given, :meth:`swap_model` checkpoints each publication through a
        :class:`~repro.streaming.swap.HotSwapper` before installing it.
    """

    def __init__(
        self,
        backend,
        config: Optional[GatewayConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        store=None,
    ):
        from repro.streaming.swap import HotSwapper

        self.backend = backend
        self.config = config or GatewayConfig()
        if registry is None:
            registry = getattr(backend, "registry", None)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queued=self.config.max_queued,
            retry_after_s=self.config.retry_after_s,
            registry=self.registry,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-gateway",
        )
        self.coalescer = Coalescer(
            backend,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
            executor=self._executor,
            registry=self.registry,
            tracer=tracer,
        )
        self._swapper = HotSwapper(backend, store=store, registry=self.registry)
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None
        self._latency = partial(
            self.registry.histogram,
            "repro_gateway_request_latency_seconds",
            help="End-to-end request latency at the gateway, per route.",
        )
        self._requests = partial(
            self.registry.counter,
            "repro_gateway_requests_total",
            help="Requests answered by the gateway, per route and status.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (returns once listening)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "gateway listening on %s:%d", self.config.host, self.port
        )

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, settle pending batches, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.flush_pending()
        self._executor.shutdown(wait=False)

    async def __aenter__(self) -> "Gateway":
        """``async with Gateway(...)`` starts the listener."""
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        """Close the listener and release resources."""
        await self.stop()

    # ------------------------------------------------------------------
    # Hot swap (the drain hook)
    # ------------------------------------------------------------------
    async def swap_model(
        self,
        model,
        *,
        extra: Optional[Dict[str, Any]] = None,
        popularity=None,
    ) -> int:
        """Publish *model* with the edge drained around the swap.

        Admission parks new arrivals (none dropped), inflight requests
        — including buffered coalescer rows, whose requesters hold
        admission slots until their futures resolve — finish on the old
        generation, then the
        :class:`~repro.streaming.swap.HotSwapper` publication runs with
        the edge quiet.  Parked arrivals resume against the new
        generation, so no response ever reports a retired one.  Returns
        the backend generation after the swap.
        """
        loop = asyncio.get_running_loop()
        async with self.admission.drain():
            await self.coalescer.flush_pending()
            await loop.run_in_executor(
                self._executor,
                partial(
                    self._swapper.publish,
                    model,
                    extra=extra,
                    popularity=popularity,
                ),
            )
        return int(self.backend.generation)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except HttpError as exc:
                    response = Response.json_payload(
                        exc.status, {"error": str(exc)}
                    )
                    writer.write(encode_response(response, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive
                writer.write(encode_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass  # client went away (or the loop is tearing down) mid-exchange
        finally:
            writer.close()
            # CancelledError is a BaseException: suppress it explicitly so
            # loop teardown with live keep-alive connections stays silent.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, request: Request) -> Response:
        started = time.monotonic()
        route, handler = self._route(request)
        try:
            response = await handler(request)
        except Overloaded as exc:
            response = Response.json_payload(
                429,
                {"error": "gateway at capacity", "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": exc.retry_after_header},
            )
        except (DeadlineExceeded, asyncio.TimeoutError):
            response = Response.json_payload(
                504, {"error": "deadline exceeded before the backend answered"}
            )
        except HttpError as exc:
            response = Response.json_payload(exc.status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - the edge must not die
            logger.exception("unhandled error serving %s", request.path)
            response = Response.json_payload(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        self._latency(labels={"route": route}).observe(
            max(0.0, time.monotonic() - started)
        )
        self._requests(
            labels={"route": route, "status": str(response.status)}
        ).inc()
        return response

    def _route(self, request: Request) -> Tuple[str, Any]:
        routes = {
            "/healthz": ("GET", self._healthz),
            "/metrics": ("GET", self._metrics),
            "/v1/recommend": ("POST", self._recommend),
        }
        entry = routes.get(request.path)
        if entry is None:
            return "unknown", self._not_found
        method, handler = entry
        if request.method != method:
            return request.path, self._method_not_allowed
        return request.path, handler

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _not_found(self, request: Request) -> Response:
        return Response.json_payload(
            404, {"error": f"no route for {request.path}"}
        )

    async def _method_not_allowed(self, request: Request) -> Response:
        return Response.json_payload(
            405, {"error": f"{request.method} not allowed on {request.path}"}
        )

    async def _healthz(self, _request: Request) -> Response:
        """Liveness: generation, drain state, inflight, and user count."""
        return Response.json_payload(
            200,
            {
                "status": "draining" if self.admission.draining else "ok",
                "generation": int(self.backend.generation),
                "inflight": self.admission.inflight,
                "users": self._backend_n_users(),
            },
        )

    async def _metrics(self, _request: Request) -> Response:
        """The shared registry in Prometheus text exposition format."""
        return Response.text(200, to_prometheus_text(self.registry.snapshot()))

    async def _recommend(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        k = self._validated_k(payload)
        deadline, timeout_s = self._deadline_of(payload)
        context = None
        span = None
        if self.tracer is not None:
            # Minted but never entered: the event loop is shared by many
            # concurrent requests, so the thread-local span stack cannot
            # be used here.  The coalescer parents the batch's worker-
            # thread spans from this context instead.
            span = self.tracer.span("http_request", tags={"route": request.path})
            context = self.tracer.context_for(span)
        try:
            if "users" in payload:
                response = await self._recommend_many(
                    payload, k, deadline, timeout_s
                )
            else:
                response = await self._recommend_one(
                    payload, k, deadline, timeout_s, context
                )
        finally:
            if span is not None:
                span.finish()
        return response

    async def _recommend_one(
        self, payload: Dict, k: int, deadline, timeout_s, context
    ) -> Response:
        user = self._validated_user(payload.get("user"))
        history = payload.get("history")
        async with self.admission.slot():
            submitted = self.coalescer.submit(
                user, k=k, history=history, deadline=deadline, context=context
            )
            if timeout_s is not None:
                result = await asyncio.wait_for(submitted, timeout=timeout_s)
            else:
                result = await submitted
        row = result.row
        return Response.json_payload(
            200,
            {
                "user": user,
                "items": [int(item) for item in row[row >= 0]],
                "generation": result.generation,
                "batch_size": result.batch_size,
            },
        )

    async def _recommend_many(
        self, payload: Dict, k: int, deadline, timeout_s
    ) -> Response:
        users = payload.get("users")
        if not isinstance(users, list) or not users:
            raise HttpError(400, '"users" must be a non-empty JSON array')
        users = [self._validated_user(user) for user in users]
        histories = payload.get("histories")
        if histories is not None and (
            not isinstance(histories, list) or len(histories) != len(users)
        ):
            raise HttpError(
                400, f'"histories" must be a {len(users)}-element array'
            )
        loop = asyncio.get_running_loop()
        async with self.admission.slot():
            serving = loop.run_in_executor(
                self._executor, self._serve_direct, users, k, histories, deadline
            )
            if timeout_s is not None:
                rows, generation = await asyncio.wait_for(
                    serving, timeout=timeout_s
                )
            else:
                rows, generation = await serving
        return Response.json_payload(
            200,
            {
                "users": users,
                "items": [
                    [int(item) for item in row[row >= 0]] for row in rows
                ],
                "generation": generation,
            },
        )

    def _serve_direct(self, users, k, histories, deadline):
        """Explicit-batch path (executor thread): no coalescing needed."""
        kwargs: Dict[str, Any] = {"k": k, "histories": histories}
        if deadline is not None and self.coalescer._backend_takes_deadline:
            kwargs["deadline"] = deadline
        rows = self.backend.recommend_batch(users, **kwargs)
        return rows, int(self.backend.generation)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _validated_k(self, payload: Dict) -> int:
        k = payload.get("k", self.config.default_k)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise HttpError(400, f'"k" must be a positive integer, got {k!r}')
        if k > self.config.max_k:
            raise HttpError(
                400, f'"k" of {k} exceeds the gateway ceiling of '
                f"{self.config.max_k}"
            )
        return k

    @staticmethod
    def _validated_user(user) -> Optional[int]:
        if user is None:
            return None  # cold request: history / popularity path
        if not isinstance(user, int) or isinstance(user, bool):
            raise HttpError(400, f'"user" must be an integer or null, got {user!r}')
        return user

    def _deadline_of(self, payload: Dict):
        """``deadline_ms`` → (absolute monotonic deadline, wait_for timeout)."""
        raw = payload.get("deadline_ms")
        if raw is None:
            return None, None
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw < 0:
            raise HttpError(
                400, f'"deadline_ms" must be a non-negative number, got {raw!r}'
            )
        timeout_s = float(raw) / 1000.0
        return time.monotonic() + timeout_s, timeout_s

    def _backend_n_users(self) -> int:
        n_users = getattr(self.backend, "n_users", None)
        if n_users is not None:
            return int(n_users)
        model = getattr(self.backend, "model", None)
        return int(model.n_users) if model is not None else 0

    def __repr__(self) -> str:
        where = f"{self.config.host}:{self.port or self.config.port}"
        return f"Gateway({type(self.backend).__name__}, {where})"


def _json_default(value):  # pragma: no cover - numpy scalar safety net
    """Coerce stray numpy scalars if they ever reach a JSON payload."""
    return int(value)


_ = json  # wire owns encoding; kept for the safety net above
