"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The gateway speaks plain HTTP/1.1 with ``Content-Length`` bodies — no
chunked encoding, no TLS, no multipart — which is all a recommendation
edge needs and keeps the implementation stdlib-only and auditable.  This
module owns the wire format; :mod:`repro.gateway.server` owns routing
and policy, and :mod:`repro.gateway.loadgen` reuses the client half
(:func:`encode_request` / :func:`read_response`) so the benchmark
traffic exercises exactly the bytes a real client would send.

Framing rules
-------------
* requests and responses are ``CRLF``-delimited with lowercase-folded
  header names;
* bodies require an explicit ``Content-Length`` (absent means empty);
* connections are keep-alive by default (HTTP/1.1 semantics); either
  side closes by sending ``Connection: close``;
* malformed input raises :class:`HttpError` with the status the server
  should answer before closing.

Examples
--------
>>> response = Response.json_payload(200, {"ok": True})
>>> encode_response(response).splitlines()[0]
b'HTTP/1.1 200 OK'
>>> encode_request("GET", "/healthz").splitlines()[0]
b'GET /healthz HTTP/1.1'
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "encode_request",
    "encode_response",
    "read_request",
    "read_response",
]

#: Reason phrases for every status the gateway emits.
REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard ceiling on the request head (request line + headers).
MAX_HEADER_BYTES = 32 * 1024
#: Default ceiling on request bodies (the server can lower it).
MAX_BODY_BYTES = 1024 * 1024


class HttpError(RuntimeError):
    """A protocol violation, carrying the status to answer with.

    Attributes
    ----------
    status:
        HTTP status code the server should send before closing.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)


@dataclass
class Request:
    """One parsed HTTP request.

    Attributes
    ----------
    method, path:
        Request method (uppercased) and path with any query string
        split off into ``query``.
    query:
        The raw query string (empty when absent); the gateway's routes
        take their parameters from JSON bodies, so this is informational.
    headers:
        Header names lowercase-folded; last occurrence wins.
    body:
        Raw body bytes (empty without ``Content-Length``).
    """

    method: str
    path: str
    query: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON, raising :class:`HttpError` 400 on rot."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to keep the connection open."""
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response about to be framed onto the wire.

    Attributes
    ----------
    status:
        HTTP status code (reason phrase resolved from :data:`REASONS`).
    body:
        Raw payload bytes.
    content_type:
        Value for the ``Content-Type`` header.
    headers:
        Extra headers (e.g. ``Retry-After``); ``Content-Length`` and
        ``Connection`` are owned by :func:`encode_response`.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json_payload(
        cls,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        """A JSON response with sorted keys (byte-stable output).

        Examples
        --------
        >>> Response.json_payload(200, {"b": 1, "a": 2}).body
        b'{"a": 2, "b": 1}'
        """
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def text(cls, status: int, text: str) -> "Response":
        """A ``text/plain`` response (the ``/metrics`` exposition)."""
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def json(self) -> object:
        """Decode the body as JSON (client-side convenience)."""
        return json.loads(self.body.decode("utf-8"))


def _parse_headers(lines: list) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


def _content_length(headers: Dict[str, str], limit: int) -> int:
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise HttpError(400, f"invalid Content-Length {raw!r}")
    if length < 0:
        raise HttpError(400, f"negative Content-Length {raw!r}")
    if length > limit:
        raise HttpError(413, f"body of {length} bytes exceeds {limit}")
    return length


async def _read_head(reader: asyncio.StreamReader) -> Optional[list]:
    """Read up to the blank line; ``None`` on clean EOF between requests."""
    try:
        blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    return blob.decode("latin-1").split("\r\n")[:-2]


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Parse one request off *reader*; ``None`` on clean connection close.

    Raises :class:`HttpError` on malformed input — the server answers
    with the error's status and closes the connection (framing cannot be
    trusted after a parse failure).
    """
    lines = await _read_head(reader)
    if lines is None:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")
    headers = _parse_headers(lines[1:])
    length = _content_length(headers, max_body_bytes)
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


async def read_response(reader: asyncio.StreamReader) -> Response:
    """Parse one response off *reader* (the load generator's client half)."""
    lines = await _read_head(reader)
    if lines is None:
        raise HttpError(400, "connection closed before the status line")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(400, f"malformed status line {lines[0]!r}")
    status = int(parts[1])
    headers = _parse_headers(lines[1:])
    length = _content_length(headers, MAX_BODY_BYTES)
    body = await reader.readexactly(length) if length else b""
    return Response(
        status=status,
        body=body,
        content_type=headers.get("content-type", ""),
        headers=headers,
    )


def encode_response(response: Response, keep_alive: bool = True) -> bytes:
    """Frame *response* as HTTP/1.1 bytes ready for ``writer.write``."""
    reason = REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.append(f"Content-Type: {response.content_type}")
    head.append(f"Content-Length: {len(response.body)}")
    head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    return "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + response.body


def encode_request(
    method: str,
    path: str,
    body: bytes = b"",
    host: str = "localhost",
) -> bytes:
    """Frame a client request (used by the load generator and tests)."""
    head = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    return "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body
