"""HTTP serving edge: coalescing, admission control, and SLO tooling.

``repro.gateway`` is the network front door over the serving stack — a
stdlib-only :mod:`asyncio` HTTP/1.1 server that turns concurrent
single-user requests into the batched ``recommend_batch`` calls the
backend is fast at, sheds load it cannot absorb, and drains itself
around hot swaps so no client ever sees a retired model generation.

Modules
-------
:mod:`repro.gateway.wire`
    HTTP/1.1 framing (server and client halves), stdlib-only.
:mod:`repro.gateway.admission`
    Bounded-inflight admission, 429 shedding, graceful drain.
:mod:`repro.gateway.batching`
    The request coalescer: buffers concurrent requests into backend
    batches under a max-delay / max-batch policy.
:mod:`repro.gateway.server`
    The :class:`Gateway` itself — routes, lifecycle, swap hook.
:mod:`repro.gateway.loadgen`
    Seeded closed-loop load generator (zipfian users, traffic shapes)
    for the p99 SLO gates in ``benchmarks/bench_gateway.py``.
"""

from repro.gateway.admission import AdmissionController, Overloaded
from repro.gateway.batching import CoalescedResult, Coalescer
from repro.gateway.loadgen import SHAPES, LoadGenerator, LoadReport, zipfian_weights
from repro.gateway.server import Gateway, GatewayConfig
from repro.gateway.wire import HttpError, Request, Response

__all__ = [
    "SHAPES",
    "AdmissionController",
    "CoalescedResult",
    "Coalescer",
    "Gateway",
    "GatewayConfig",
    "HttpError",
    "LoadGenerator",
    "LoadReport",
    "Overloaded",
    "Request",
    "Response",
    "zipfian_weights",
]
