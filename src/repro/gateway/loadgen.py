"""Closed-loop HTTP load generator for the gateway's SLO gates.

Benchmarking a serving edge with an open-loop blaster measures the
blaster; a **closed-loop** generator (each simulated client waits for
its response before sending the next request) measures the system,
because offered load backs off exactly the way real clients do when the
edge slows down.  :class:`LoadGenerator` drives ``POST /v1/recommend``
over real sockets using the wire helpers
(:func:`~repro.gateway.wire.encode_request` /
:func:`~repro.gateway.wire.read_response`), so benchmark traffic
exercises the exact bytes a production client would send.

Reproducibility:

* every client draws users from a **seeded zipfian** popularity
  distribution (:func:`zipfian_weights`) via
  :func:`repro.utils.rng.derive_seed`, so two runs with one seed replay
  the same request mix;
* traffic **shapes** (:data:`SHAPES`) modulate how many clients are
  active over the run: ``constant`` for steady-state SLO gates,
  ``diurnal`` for a smooth ramp up and down, ``flash`` for a
  flash-crowd spike — the admission-control stress test.

Examples
--------
>>> zipfian_weights(3).round(3).tolist()
[0.545, 0.273, 0.182]
>>> SHAPES["constant"](0.2), shape_flash(0.5)
(1.0, 1.0)
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.gateway.wire import HttpError, encode_request, read_response
from repro.obs.metrics import MetricsRegistry
from repro.utils.rng import derive_seed, ensure_rng

__all__ = [
    "SHAPES",
    "LoadGenerator",
    "LoadReport",
    "shape_constant",
    "shape_diurnal",
    "shape_flash",
    "zipfian_weights",
]


def zipfian_weights(n_users: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized zipfian popularity over ``n_users`` ranks.

    Rank ``r`` (0-based) gets mass proportional to ``1 / (r + 1) **
    exponent`` — the classic head-heavy access pattern of recommendation
    traffic, which is what makes coalescing and caching interesting.

    Examples
    --------
    >>> zipfian_weights(4, exponent=0.0).tolist()
    [0.25, 0.25, 0.25, 0.25]
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    weights = ranks ** -float(exponent)
    return weights / weights.sum()


def shape_constant(frac: float) -> float:
    """Steady state: full concurrency for the whole run.

    Examples
    --------
    >>> shape_constant(0.0), shape_constant(0.9)
    (1.0, 1.0)
    """
    return 1.0


def shape_diurnal(frac: float) -> float:
    """A smooth day-cycle ramp: quiet ends, peak mid-run.

    Examples
    --------
    >>> shape_diurnal(0.0), shape_diurnal(0.5)
    (0.25, 1.0)
    """
    return 0.25 + 0.75 * (0.5 - 0.5 * math.cos(2.0 * math.pi * frac))


def shape_flash(frac: float) -> float:
    """A flash crowd: low baseline with a spike in the middle fifth.

    Examples
    --------
    >>> shape_flash(0.1), shape_flash(0.5), shape_flash(0.9)
    (0.3, 1.0, 0.3)
    """
    return 1.0 if 0.4 <= frac <= 0.6 else 0.3


#: Named traffic shapes: run-fraction in ``[0, 1]`` → active-client factor.
SHAPES = {
    "constant": shape_constant,
    "diurnal": shape_diurnal,
    "flash": shape_flash,
}


@dataclass
class LoadReport:
    """What one load-generator run measured.

    Attributes
    ----------
    requests, ok, shed, errors:
        Total exchanges attempted, 200 responses, 429 sheds, and
        transport-level failures (resets, malformed frames).
    duration_s:
        Wall-clock of the measuring window.
    qps:
        Completed-OK responses per second.
    p50_ms, p95_ms, p99_ms:
        Exact percentiles over per-request latencies of OK responses
        (``0.0`` when nothing completed).
    status_counts:
        Responses per HTTP status (plus ``"transport_error"``).
    generations:
        Sorted backend generations observed in OK responses — the
        swap-under-load probe.
    shape, concurrency, seed:
        The run's configuration, echoed for the benchmark artifact.
    """

    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    duration_s: float = 0.0
    qps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    status_counts: Dict[str, int] = field(default_factory=dict)
    generations: List[int] = field(default_factory=list)
    shape: str = "constant"
    concurrency: int = 0
    seed: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        """The report as a plain JSON-serializable dict."""
        return {
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 6),
            "qps": round(self.qps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "status_counts": dict(sorted(self.status_counts.items())),
            "generations": list(self.generations),
            "shape": self.shape,
            "concurrency": self.concurrency,
            "seed": self.seed,
        }


class _ClientTally:
    """Per-client accumulator merged into the final :class:`LoadReport`."""

    def __init__(self):
        self.latencies: List[float] = []
        self.statuses: Dict[str, int] = {}
        self.generations: Set[int] = set()
        self.requests = 0
        self.errors = 0

    def count(self, status: str) -> None:
        """Record one response with the given status label."""
        self.statuses[status] = self.statuses.get(status, 0) + 1


class LoadGenerator:
    """Seeded closed-loop client fleet against one gateway.

    Parameters
    ----------
    host, port:
        The gateway to drive.
    n_users:
        Catalog of user ids the zipfian draw ranges over.
    duration_s:
        How long to keep the fleet running.
    concurrency:
        Client coroutines at full load (shapes scale the active subset).
    k:
        Top-k depth each request asks for.
    shape:
        A key of :data:`SHAPES`, or any callable ``frac -> factor``.
    exponent:
        Zipfian skew (0 = uniform, 1 = classic zipf).
    seed:
        Master seed; client ``i`` draws from
        ``derive_seed(seed, i)`` so the request mix replays exactly.
    backoff_s:
        Pause after a 429 or transport error before the client retries.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; client-side
        latency and response-status series are recorded into it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        n_users: int = 1000,
        duration_s: float = 2.0,
        concurrency: int = 8,
        k: int = 10,
        shape: str = "constant",
        exponent: float = 1.0,
        seed: Optional[int] = 1234,
        backoff_s: float = 0.01,
        registry: Optional[MetricsRegistry] = None,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.host = host
        self.port = int(port)
        self.n_users = int(n_users)
        self.duration_s = float(duration_s)
        self.concurrency = int(concurrency)
        self.k = int(k)
        self.shape_name = shape if isinstance(shape, str) else getattr(
            shape, "__name__", "custom"
        )
        self.shape = SHAPES[shape] if isinstance(shape, str) else shape
        self.exponent = float(exponent)
        self.seed = seed
        self.backoff_s = float(backoff_s)
        self._cumulative = np.cumsum(zipfian_weights(self.n_users, exponent))
        self._latency_hist = self._responses = None
        if registry is not None:
            self._latency_hist = registry.histogram(
                "repro_gateway_client_latency_seconds",
                help="Client-observed request latency from the load generator.",
            )
            self._responses = lambda status: registry.counter(
                "repro_gateway_client_responses_total",
                help="Load-generator responses per status.",
                labels={"status": status},
            )

    def draw_user(self, rng: np.random.Generator) -> int:
        """One zipfian user draw (inverse-CDF over the cumulative weights)."""
        return int(np.searchsorted(self._cumulative, rng.random(), side="right"))

    def active_clients(self, frac: float) -> int:
        """How many clients the shape keeps active at run-fraction *frac*."""
        factor = self.shape(min(1.0, max(0.0, frac)))
        return max(1, min(self.concurrency, math.ceil(self.concurrency * factor)))

    async def run(self) -> LoadReport:
        """Drive the fleet for ``duration_s`` and return the merged report."""
        started = time.monotonic()
        end_at = started + self.duration_s
        tallies = [_ClientTally() for _ in range(self.concurrency)]
        await asyncio.gather(
            *(
                self._client(index, tallies[index], started, end_at)
                for index in range(self.concurrency)
            )
        )
        return self._merge(tallies, time.monotonic() - started)

    async def _client(
        self,
        index: int,
        tally: _ClientTally,
        started: float,
        end_at: float,
    ) -> None:
        rng = ensure_rng(derive_seed(self.seed, index))
        reader = writer = None
        try:
            while True:
                now = time.monotonic()
                if now >= end_at:
                    return
                frac = (now - started) / self.duration_s
                if index >= self.active_clients(frac):
                    await asyncio.sleep(self.backoff_s)
                    continue
                body = json.dumps(
                    {"user": self.draw_user(rng), "k": self.k}
                ).encode("utf-8")
                tally.requests += 1
                try:
                    if writer is None:
                        reader, writer = await asyncio.open_connection(
                            self.host, self.port
                        )
                    sent_at = time.monotonic()
                    writer.write(encode_request("POST", "/v1/recommend", body))
                    await writer.drain()
                    response = await read_response(reader)
                    elapsed = time.monotonic() - sent_at
                except (HttpError, OSError, asyncio.IncompleteReadError):
                    tally.errors += 1
                    tally.count("transport_error")
                    if self._responses is not None:
                        self._responses("transport_error").inc()
                    writer = await self._close(writer)
                    await asyncio.sleep(self.backoff_s)
                    continue
                status = str(response.status)
                tally.count(status)
                if self._responses is not None:
                    self._responses(status).inc()
                if response.status == 200:
                    tally.latencies.append(elapsed)
                    if self._latency_hist is not None:
                        self._latency_hist.observe(elapsed)
                    payload = response.json()
                    tally.generations.add(int(payload.get("generation", 0)))
                elif response.status == 429:
                    await asyncio.sleep(self.backoff_s)
        finally:
            await self._close(writer)

    @staticmethod
    async def _close(writer) -> None:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
        return None

    def _merge(self, tallies: List[_ClientTally], elapsed: float) -> LoadReport:
        latencies = np.asarray(
            [value for tally in tallies for value in tally.latencies]
        )
        statuses: Dict[str, int] = {}
        generations: Set[int] = set()
        for tally in tallies:
            generations |= tally.generations
            for status, count in tally.statuses.items():
                statuses[status] = statuses.get(status, 0) + count
        ok = statuses.get("200", 0)
        percentile = (
            (lambda q: float(np.percentile(latencies, q)) * 1000.0)
            if latencies.size
            else (lambda q: 0.0)
        )
        return LoadReport(
            requests=sum(tally.requests for tally in tallies),
            ok=ok,
            shed=statuses.get("429", 0),
            errors=sum(tally.errors for tally in tallies),
            duration_s=elapsed,
            qps=ok / elapsed if elapsed > 0 else 0.0,
            p50_ms=percentile(50),
            p95_ms=percentile(95),
            p99_ms=percentile(99),
            status_counts=statuses,
            generations=sorted(generations),
            shape=self.shape_name,
            concurrency=self.concurrency,
            seed=self.seed,
        )
