"""Request coalescing: many concurrent HTTP requests, one batched scan.

The serving stack's fast path is :meth:`recommend_batch` — one BLAS
pass amortized over many rows (PR 3's measured win).  A network edge
naturally receives the opposite shape: many concurrent *single-user*
requests.  The :class:`Coalescer` converts one shape into the other
without giving up latency:

* arrivals buffer into one pending batch per ``k`` (rows of one
  ``recommend_batch`` call must share a width);
* a batch flushes when it reaches ``max_batch`` rows **or**
  ``max_delay_s`` after its first row arrived, whichever comes first —
  under load batches fill instantly (throughput), when idle a request
  waits at most the max delay (bounded latency cost);
* the batch runs in a worker thread (``run_in_executor``), keeping the
  numpy scan off the event loop, and each result row is routed back to
  the future its request is awaiting on — by position, so responses can
  never cross between interleaved batches;
* the backend **generation** is read after the scan while every member
  still holds its admission slot, so the pair ``(row, generation)`` is
  coherent even around hot swaps (see
  :meth:`repro.gateway.admission.AdmissionController.drain`).

Determinism is inherited, not re-implemented: rows of a service batch
are computed independently and bit-identically to single-user calls
(the PR 5 top-k total order), so coalescing changes *when* a row is
computed, never *what* it contains.

Examples
--------
>>> import asyncio
>>> import numpy as np
>>> class Backend:
...     generation = 0
...     def recommend_batch(self, users, k=10, histories=None):
...         return np.asarray([[int(u)] * k for u in users])
>>> async def demo():
...     coalescer = Coalescer(Backend(), max_batch=2, max_delay_s=0.5)
...     a, b = await asyncio.gather(
...         coalescer.submit(7, k=3), coalescer.submit(9, k=3)
...     )
...     return a.row.tolist(), b.row.tolist(), coalescer.batches
>>> asyncio.run(demo())
([7, 7, 7], [9, 9, 9], 1)
"""

from __future__ import annotations

import asyncio
import inspect
import time
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanContext, Tracer

__all__ = ["CoalescedResult", "Coalescer"]

#: Bucket ladder for the coalesced-batch-size histogram.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class CoalescedResult:
    """What one coalesced request resolves to.

    Attributes
    ----------
    row:
        The ``-1``-padded int64 top-k row for this request's user.
    generation:
        The backend generation that served the row, read while the
        request still held its admission slot (coherent under drains).
    batch_size:
        How many requests shared the scan — observability for tests
        and the benchmark's coalescing-efficiency gate.
    """

    row: np.ndarray
    generation: int
    batch_size: int


@dataclass
class _Pending:
    """One buffered request waiting for its batch to flush."""

    user: Optional[int]
    history: Optional[Any]
    deadline: Optional[float]
    future: asyncio.Future
    context: Optional[SpanContext]
    enqueued_at: float


class Coalescer:
    """Buffer concurrent single-user requests into backend batches.

    Parameters
    ----------
    backend:
        Anything with the service's ``recommend_batch(users, k=...,
        histories=...)`` contract and a ``generation`` attribute — a
        :class:`~repro.serving.service.RecommenderService` or a
        :class:`~repro.serving.sharding.ShardRouter`.  When the backend
        accepts a ``deadline`` keyword (the router does), expired work
        is cancelled inside the fleet instead of being computed and
        thrown away.
    max_batch:
        Flush as soon as a pending batch reaches this many rows.
    max_delay_s:
        Flush a partial batch this long after its first row arrived —
        the most latency coalescing may ever add to a request.
    executor:
        Thread pool the batches run on (``None`` uses the loop default).
    registry:
        Optional metrics registry: batch-size histogram, coalesce-wait
        histogram, and a flush counter are recorded.
    tracer:
        Optional tracer; each flushed batch's ``serve`` span is opened
        in the worker thread under the batch-opening request's context,
        so backend spans (router scatter/gather, shard scans) stitch
        into the same trace.
    """

    def __init__(
        self,
        backend,
        *,
        max_batch: int = 32,
        max_delay_s: float = 0.002,
        executor: Optional[Executor] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self._backend = backend
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self._executor = executor
        self.tracer = tracer
        self._pending: Dict[int, List[_Pending]] = {}
        self._timers: Dict[int, asyncio.TimerHandle] = {}
        self._tasks: set = set()
        #: Batches flushed so far (tests assert coalescing happened).
        self.batches = 0
        try:
            self._backend_takes_deadline = "deadline" in (
                inspect.signature(backend.recommend_batch).parameters
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic backends
            self._backend_takes_deadline = False
        self._batch_size_hist = self._wait_hist = None
        if registry is not None:
            self._batch_size_hist = registry.histogram(
                "repro_gateway_batch_rows",
                help="Rows per coalesced backend batch.",
                buckets=BATCH_SIZE_BUCKETS,
            )
            self._wait_hist = registry.histogram(
                "repro_gateway_coalesce_wait_seconds",
                help="Time a request spent buffered before its batch ran.",
            )

    @property
    def pending(self) -> int:
        """Requests currently buffered across every ``k`` bucket."""
        return sum(len(bucket) for bucket in self._pending.values())

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    async def submit(
        self,
        user: Optional[int],
        k: int = 10,
        history: Optional[Any] = None,
        deadline: Optional[float] = None,
        context: Optional[SpanContext] = None,
    ) -> CoalescedResult:
        """Buffer one request and await its row.

        *deadline* is an absolute :func:`time.monotonic` stamp; a batch
        forwards the tightest deadline of its members to a
        deadline-aware backend only when **every** member carries one
        (a mixed batch must not fail its unbounded members early).
        """
        loop = asyncio.get_running_loop()
        entry = _Pending(
            user=user,
            history=history,
            deadline=deadline,
            future=loop.create_future(),
            context=context,
            enqueued_at=time.monotonic(),
        )
        bucket = self._pending.setdefault(int(k), [])
        bucket.append(entry)
        if len(bucket) == 1:
            self._timers[int(k)] = loop.call_later(
                self.max_delay_s, self._flush, int(k)
            )
        if len(bucket) >= self.max_batch:
            self._flush(int(k))
        return await entry.future

    async def flush_pending(self) -> None:
        """Force-flush every buffer and wait for the batches to settle.

        The server calls this on shutdown so no request is left parked
        on a timer that will never fire.
        """
        for k in list(self._pending):
            self._flush(k)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # ------------------------------------------------------------------
    # Flush machinery (event-loop side)
    # ------------------------------------------------------------------
    def _flush(self, k: int) -> None:
        timer = self._timers.pop(k, None)
        if timer is not None:
            timer.cancel()
        entries = self._pending.pop(k, None)
        if not entries:
            return
        self.batches += 1
        if self._batch_size_hist is not None:
            self._batch_size_hist.observe(float(len(entries)))
        if self._wait_hist is not None:
            now = time.monotonic()
            for entry in entries:
                self._wait_hist.observe(max(0.0, now - entry.enqueued_at))
        task = asyncio.get_running_loop().create_task(self._run(k, entries))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, k: int, entries: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        users = [entry.user for entry in entries]
        histories: Optional[list] = None
        if any(entry.history is not None for entry in entries):
            histories = [entry.history for entry in entries]
        deadline = None
        if all(entry.deadline is not None for entry in entries):
            deadline = min(entry.deadline for entry in entries)
        context = entries[0].context
        try:
            rows, generation = await loop.run_in_executor(
                self._executor,
                self._serve, users, k, histories, deadline, context,
            )
        except BaseException as exc:
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        for index, entry in enumerate(entries):
            if not entry.future.done():
                entry.future.set_result(
                    CoalescedResult(
                        row=rows[index],
                        generation=generation,
                        batch_size=len(entries),
                    )
                )

    # ------------------------------------------------------------------
    # Worker-thread side
    # ------------------------------------------------------------------
    def _serve(
        self,
        users: list,
        k: int,
        histories: Optional[list],
        deadline: Optional[float],
        context: Optional[SpanContext],
    ):
        """Run one backend batch (executor thread, never the event loop)."""
        kwargs: Dict[str, Any] = {"k": k, "histories": histories}
        if deadline is not None and self._backend_takes_deadline:
            kwargs["deadline"] = deadline
        if self.tracer is not None and context is not None:
            # Entering the span on *this* thread makes any backend span
            # (service batch, router scatter/gather) its child — the
            # socket-to-shard stitch.
            with self.tracer.child_from_context(
                context, "serve", tags={"rows": len(users)}
            ):
                rows = self._backend.recommend_batch(users, **kwargs)
        else:
            rows = self._backend.recommend_batch(users, **kwargs)
        # Read under the members' admission slots: a drained swap cannot
        # run between the scan above and this stamp.
        generation = int(getattr(self._backend, "generation", 0))
        return rows, generation
