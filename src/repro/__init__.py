"""repro — taxonomy-aware latent factor models for purchase prediction.

A faithful, laptop-scale reproduction of *"Supercharging Recommender
Systems using Taxonomies for Learning User Purchase Behavior"*
(Kanagal et al., PVLDB 5(10), 2012).

Quickstart
----------
>>> from repro import (
...     SyntheticConfig, generate_dataset, train_test_split,
...     TaxonomyFactorModel, SerialTrainer, evaluate_model,
... )
>>> data = generate_dataset(SyntheticConfig(n_users=500, seed=0))
>>> split = train_test_split(data.log, mu=0.5, seed=0)
>>> model = TaxonomyFactorModel(data.taxonomy, epochs=5, seed=0)
>>> _ = SerialTrainer(model).train(split.train)
>>> result = evaluate_model(model, split)
>>> 0.0 <= result.auc <= 1.0
True

Training (the unified front door)
---------------------------------
``repro.train`` is the single entry point for model fitting: one
:class:`~repro.train.base.Trainer` contract with serial, threaded, and
online backends sharing one epoch loop, one per-epoch seed policy, and
one callback system (``EvalCallback``, ``EarlyStopping``, ``LRSchedule``,
``CheckpointCallback``).  Declarative
:class:`~repro.utils.config.ExperimentSpec` files run end to end via
:class:`~repro.train.runner.ExperimentRunner` — also exposed as
``python -m repro run`` / ``sweep``.  The older ``model.fit(...)`` and
``parallel.ThreadedSGDTrainer`` entry points remain as deprecated shims.

Serving (the recommended inference entry point)
-----------------------------------------------
Production traffic goes through ``repro.serving`` rather than per-model
calls: every model satisfies the :class:`~repro.serving.protocol.Recommender`
protocol (including the batched ``recommend_batch`` fast path),
:class:`~repro.serving.bundle.ModelBundle` packages factors + taxonomy +
config into one loadable directory, and
:class:`~repro.serving.service.RecommenderService` routes requests by user
type (known → factors, cold with history → fold-in, cold without →
popularity) with an LRU query cache and per-request ``ServingStats``.

>>> from repro import RecommenderService
>>> service = RecommenderService(model, history_log=split.train)
>>> service.recommend_batch([0, 1, 2], k=3).shape
(3, 3)

Streaming (online updates between retrains)
-------------------------------------------
``repro.streaming`` connects live purchase events to the factors being
served: events are micro-batched into per-user deltas, an
:class:`~repro.streaming.updater.OnlineUpdater` applies incremental BPR
steps to user vectors against frozen item/taxonomy factors (folding in
brand-new users, onboarding brand-new items through the taxonomy), and a
:class:`~repro.streaming.swap.HotSwapper` checkpoints versioned bundles
and atomically swaps the live model inside ``RecommenderService`` — with
cache invalidation, so serving never pauses and never goes stale.

>>> from repro import OnlineUpdater, PurchaseEvent
>>> updater = OnlineUpdater(model)
>>> _ = updater.apply_events([PurchaseEvent(user=0, items=(1, 2))])
>>> service.swap_model(updater.snapshot())
1

Package layout
--------------
``repro.core``
    The TF model (``TaxonomyFactorModel``), baselines (``MFModel``, FPMC,
    popularity/random), BPR/SGD training, sibling-based training, and
    cascaded inference.
``repro.serving``
    The serving layer: the ``Recommender`` protocol, ``ModelBundle``
    artifacts, the batched ``RecommenderService``, and the sharded
    multi-process ``ShardRouter`` fleet over shared-memory factors.
``repro.streaming``
    Online ingestion (event logs, micro-batches), incremental factor
    updates against frozen item factors, versioned checkpoints, and
    zero-downtime model hot-swap.
``repro.taxonomy``
    The category tree: construction, generation, serialization.
``repro.data``
    Transaction logs, the synthetic purchase-log generator, train/test
    splitting, dataset statistics, Amazon-format loaders.
``repro.eval``
    Ranking metrics and the paper's evaluation protocol.
``repro.parallel``
    Lock-based threaded SGD, thread-local factor caches, and the
    multi-core scaling model.
``repro.obs``
    Observability: the thread-safe ``MetricsRegistry`` (counters, gauges,
    fixed-bucket histograms), Prometheus-text / JSON-lines exporters, and
    deterministic request tracing that stitches per-shard spans into one
    tree (``repro stats`` renders both).
``repro.gateway``
    The network edge: a stdlib-only asyncio HTTP/1.1 ``Gateway`` over a
    service or fleet, with request coalescing, bounded admission
    (429 + ``Retry-After``), graceful drains around hot swaps, and the
    seeded closed-loop ``LoadGenerator`` behind the p99 SLO gates.
``repro.viz``
    t-SNE / PCA projections of the learned factors.
"""

from repro.core.cascade import CascadedRecommender, CascadeResult
from repro.core.explain import ScoreExplanation, explain_recommendations, explain_score
from repro.core.folding import (
    fold_in_user,
    fold_in_users,
    recommend_for_history,
    score_for_vector,
)
from repro.core.mf_model import MFModel, bpr_mf_model, flat_taxonomy, fpmc_model
from repro.core.popularity import PopularityModel, RandomModel
from repro.core.targeting import audience_for_category, diversified_recommend
from repro.core.tf_model import NotFittedError, TaxonomyFactorModel
from repro.eval.model_selection import GridSearchResult, grid_search
from repro.eval.significance import compare_models, paired_bootstrap, sign_test
from repro.taxonomy.extend import add_items
from repro.data.split import TrainTestSplit, train_test_split
from repro.data.synthetic import SyntheticDataset, generate_dataset
from repro.data.transactions import TransactionLog
from repro.eval.protocol import (
    CascadeEvalResult,
    ColdStartResult,
    EvalResult,
    TopKResult,
    evaluate_cascade,
    evaluate_category_level,
    evaluate_cold_start,
    evaluate_model,
    evaluate_parallel,
    evaluate_topk,
)
from repro.serving import (
    BundleError,
    FoldInRecommender,
    ModelBundle,
    ModelState,
    Recommender,
    RecommenderService,
    ServingError,
    ServingStats,
    ShardingError,
    ShardRouter,
    SubtreeIndex,
)
from repro.streaming import (
    CheckpointStore,
    EventLog,
    HotSwapper,
    ItemArrival,
    MicroBatch,
    OnlineUpdater,
    PurchaseEvent,
    StreamingPipeline,
    StreamingStats,
    events_from_transactions,
    iter_microbatches,
)
from repro.taxonomy.tree import Taxonomy, TaxonomyError
from repro.train import (
    CheckpointCallback,
    EarlyStopping,
    EvalCallback,
    ExperimentReport,
    ExperimentResult,
    ExperimentRunner,
    LRSchedule,
    OnlineTrainer,
    SerialTrainer,
    ThreadedTrainer,
    TrainEpoch,
    Trainer,
    TrainerResult,
    run_experiment,
    sweep,
    train_model,
)
from repro.utils.config import (
    CascadeConfig,
    DataSpec,
    EvalSpec,
    ExperimentSpec,
    SyntheticConfig,
    TrainConfig,
    TrainerSpec,
    apply_overrides,
    load_spec,
    save_spec,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # Models
    "TaxonomyFactorModel",
    "MFModel",
    "fpmc_model",
    "bpr_mf_model",
    "PopularityModel",
    "RandomModel",
    "NotFittedError",
    # Serving (recommended inference entry point)
    "Recommender",
    "RecommenderService",
    "ModelState",
    "ServingStats",
    "ServingError",
    "ModelBundle",
    "BundleError",
    "FoldInRecommender",
    "ShardRouter",
    "ShardingError",
    "SubtreeIndex",
    # Streaming (online updates + hot swap)
    "PurchaseEvent",
    "ItemArrival",
    "EventLog",
    "MicroBatch",
    "iter_microbatches",
    "events_from_transactions",
    "OnlineUpdater",
    "StreamingStats",
    "CheckpointStore",
    "HotSwapper",
    "StreamingPipeline",
    # Inference
    "CascadedRecommender",
    "CascadeResult",
    "ScoreExplanation",
    "explain_score",
    "explain_recommendations",
    "fold_in_user",
    "fold_in_users",
    "score_for_vector",
    "recommend_for_history",
    "audience_for_category",
    "diversified_recommend",
    # Taxonomy
    "Taxonomy",
    "TaxonomyError",
    "flat_taxonomy",
    "add_items",
    # Data
    "TransactionLog",
    "SyntheticDataset",
    "generate_dataset",
    "TrainTestSplit",
    "train_test_split",
    # Evaluation
    "EvalResult",
    "ColdStartResult",
    "CascadeEvalResult",
    "TopKResult",
    "evaluate_topk",
    "evaluate_model",
    "evaluate_category_level",
    "evaluate_cold_start",
    "evaluate_cascade",
    "evaluate_parallel",
    "grid_search",
    "GridSearchResult",
    "paired_bootstrap",
    "sign_test",
    "compare_models",
    # Training (the unified front door)
    "Trainer",
    "TrainerResult",
    "TrainEpoch",
    "SerialTrainer",
    "train_model",
    "ThreadedTrainer",
    "OnlineTrainer",
    "LRSchedule",
    "EvalCallback",
    "EarlyStopping",
    "CheckpointCallback",
    "ExperimentRunner",
    "ExperimentReport",
    "ExperimentResult",
    "run_experiment",
    "sweep",
    # Configuration
    "TrainConfig",
    "CascadeConfig",
    "SyntheticConfig",
    "ExperimentSpec",
    "DataSpec",
    "TrainerSpec",
    "EvalSpec",
    "load_spec",
    "save_spec",
    "apply_overrides",
]
