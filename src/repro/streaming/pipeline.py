"""End-to-end streaming orchestration: ingest → update → publish.

:class:`StreamingPipeline` ties the three streaming layers together for
the common deployment shape — one consumer draining an event stream,
periodically publishing a fresh model into the serving tier:

1. the stream is (optionally) paced to a target event rate and grouped
   into micro-batches (:mod:`repro.streaming.events`);
2. each micro-batch is folded into the working factors
   (:class:`~repro.streaming.updater.OnlineUpdater`);
3. every ``refine_every`` batches the taxonomy itself is refined —
   items whose streamed purchases pulled them away from their category
   are re-seated (:meth:`~repro.streaming.updater.OnlineUpdater.refine`)
   with effective factors preserved, so the refined tree changes nothing
   until later training exploits the corrected chains;
4. every ``swap_every`` batches (and once at the end of the stream) a
   snapshot is checkpointed and hot-swapped into the live
   :class:`~repro.serving.service.RecommenderService`
   (:class:`~repro.streaming.swap.HotSwapper`) — the new tree, factors,
   and rebuilt retrieval index always go live together in one swap, and
   serving continues uninterrupted throughout.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.serving.service import RecommenderService
from repro.streaming.events import Event, iter_microbatches, replay
from repro.streaming.swap import CheckpointStore, HotSwapper
from repro.streaming.updater import OnlineUpdater, StreamingStats


class StreamingPipeline:
    """Drain an event stream into a live service.

    Parameters
    ----------
    service:
        The live serving front door; its *current* model seeds the
        updater unless an explicit *updater* is given.
    updater:
        A preconfigured :class:`~repro.streaming.updater.OnlineUpdater`
        (defaults to one built from ``service.model``).
    batch_size:
        Events per micro-batch.
    swap_every:
        Publish a snapshot every this many micro-batches (``0`` publishes
        only once, at the end of the stream).
    refine_every:
        Run one taxonomy refinement pass
        (:meth:`~repro.streaming.updater.OnlineUpdater.refine`) every
        this many micro-batches, *before* the batch's publication is
        considered — so a refined tree and its factors always go live
        together, atomically, through the same hot swap (``0``, the
        default, never refines).
    refine_min_gain, refine_max_moves:
        Drift threshold and per-pass move cap forwarded to
        :meth:`~repro.streaming.updater.OnlineUpdater.refine`.
    store:
        Optional :class:`~repro.streaming.swap.CheckpointStore`; every
        publication is checkpointed before going live.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by
        the updater it builds and the swapper; defaults to the service's
        own registry, so one ``snapshot()`` covers ingest, swap, and
        serving together.  Ignored for the updater when an explicit
        *updater* is passed (that updater keeps its own stats registry).

    Examples
    --------
    >>> from repro import (PurchaseEvent, RecommenderService,
    ...                    SyntheticConfig, TaxonomyFactorModel,
    ...                    generate_dataset)
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> service = RecommenderService(model, history_log=data.log)
    >>> pipeline = StreamingPipeline(service, batch_size=2, swap_every=1)
    >>> stats = pipeline.run([PurchaseEvent(user=0, items=(1,)),
    ...                       PurchaseEvent(user=1, items=(2,))])
    >>> (stats.events, pipeline.swaps, service.generation)
    (2, 1, 1)
    """

    def __init__(
        self,
        service: RecommenderService,
        updater: Optional[OnlineUpdater] = None,
        batch_size: int = 256,
        swap_every: int = 4,
        refine_every: int = 0,
        refine_min_gain: float = 0.05,
        refine_max_moves: Optional[int] = None,
        store: Optional[CheckpointStore] = None,
        registry=None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if swap_every < 0:
            raise ValueError(f"swap_every must be >= 0, got {swap_every}")
        if refine_every < 0:
            raise ValueError(f"refine_every must be >= 0, got {refine_every}")
        if registry is None:
            registry = getattr(service, "registry", None)
        self.service = service
        self.registry = registry
        self.updater = updater or OnlineUpdater(
            service.model, registry=registry
        )
        self.batch_size = int(batch_size)
        self.swap_every = int(swap_every)
        self.refine_every = int(refine_every)
        self.refine_min_gain = float(refine_min_gain)
        self.refine_max_moves = refine_max_moves
        #: Refinement passes that actually moved at least one item.
        self.refinements = 0
        self.swapper = HotSwapper(service, store=store, registry=registry)

    @property
    def swaps(self) -> int:
        """Models published so far."""
        return self.swapper.swaps

    def publish(self) -> Optional[int]:
        """Snapshot the updater and hot-swap the result live."""
        snapshot = self.updater.snapshot()
        return self.swapper.publish(
            snapshot,
            extra={"streamed_events": self.updater.stats.events},
            popularity=self.updater.popularity(),
        )

    def run(
        self,
        events: Iterable[Event],
        rate: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> StreamingStats:
        """Consume *events* to exhaustion (or *max_events*).

        *rate* paces the replay at a target events/second (``None`` =
        as fast as the updater can drain).  Returns the updater's
        cumulative :class:`~repro.streaming.updater.StreamingStats`.
        """
        if max_events is not None:
            events = itertools.islice(events, max_events)
        batches = 0
        published_at = 0
        for batch in iter_microbatches(replay(events, rate), self.batch_size):
            self.updater.apply(batch)
            batches += 1
            if self.refine_every and batches % self.refine_every == 0:
                moves = self.updater.refine(
                    min_gain=self.refine_min_gain,
                    max_moves=self.refine_max_moves,
                )
                if moves:
                    self.refinements += 1
            if self.swap_every and batches % self.swap_every == 0:
                self.publish()
                published_at = batches
        # Flush the tail — unless the last batch already published (no
        # duplicate checkpoints) or the stream was empty (nothing to swap).
        if batches and published_at != batches:
            self.publish()
        return self.updater.stats
