"""Incremental factor updates between full retrains.

The paper's trainer (Sec. 4) rebuilds every factor family from a frozen
log; :class:`OnlineUpdater` is the streaming counterpart.  It owns a
private copy of a fitted model's factors and folds live purchase events
into them with the item/taxonomy factors **frozen** — only user vectors
move.  The rationale is the same asymmetry the paper exploits: the catalog
and taxonomy are relatively stable and well-estimated by the offline run,
while user state (who bought what *since* the retrain) goes stale by the
minute.

Three update paths, all against frozen item factors:

* **known users** — vectorized BPR steps on their factor rows, reusing the
  exact Eq. 6 user-step math of :func:`repro.core.sgd.bpr_user_step`, with
  the short-term Markov context (Eq. 3) recomputed from the accumulated
  streamed history;
* **brand-new users** — grown into the user matrix and warm-started by
  :func:`repro.core.folding.fold_in_user` on their streamed history (the
  library's standard fold-in), after which they update like known users;
* **brand-new items** — attached to the taxonomy through
  :func:`repro.taxonomy.extend.add_items` (via ``model.onboard_items``)
  with zero offset factors, so Eq. 1 scores them by their parent's
  ancestor-chain sum until purchase data arrives — the paper's cold-start
  prescription, applied mid-stream.

The updater never touches the model being served; :meth:`snapshot`
produces an independent fitted model (factors deep-copied, streamed
history attached) ready for :meth:`~repro.serving.service.
RecommenderService.swap_model`.
"""

from __future__ import annotations

import copy
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bpr import log_sigmoid, sigmoid
from repro.core.folding import fold_in_user
from repro.core.sgd import bpr_user_step
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.streaming.events import ItemArrival, MicroBatch, PurchaseEvent
from repro.taxonomy.learn import place_item, refine_placements
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


#: Counter fields a StreamingStats accounts, in as_dict order.  All are
#: integers except ``seconds``.
_STREAM_FIELDS = (
    "events",
    "purchases",
    "batches",
    "pair_steps",
    "new_users",
    "new_items",
    "placed_items",
    "replants",
    "seconds",
)


class StreamingStats:
    """Cumulative accounting of everything the updater has ingested.

    Since 1.6 a thin view over a
    :class:`~repro.obs.metrics.MetricsRegistry`: each field is backed by
    a counter (``repro_streaming_events_total``, ...) and per-batch
    apply latency by the histogram
    ``repro_streaming_batch_seconds``, so ``registry.snapshot()``
    exports the ingest rate alongside serving and training telemetry.
    The attribute API (``stats.events`` et al.) is unchanged.

    Parameters
    ----------
    registry:
        The registry to record into; private when omitted.  Pass the
        service's registry to get one whole-system snapshot.
    labels:
        Optional constant labels stamped on every backing series.
    """

    def __init__(
        self,
        registry=None,
        labels: Optional[Dict[str, str]] = None,
    ):
        from repro.obs.metrics import MetricsRegistry

        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels) if labels else {}
        self._counters = {
            name: self.registry.counter(
                f"repro_streaming_{name}_total",
                help=f"Cumulative streaming {name.replace('_', ' ')}.",
                labels=self.labels,
            )
            for name in _STREAM_FIELDS
        }
        self._batch_seconds = self.registry.histogram(
            "repro_streaming_batch_seconds",
            help="Wall time to apply one micro-batch.",
            labels=self.labels,
        )

    def __getattr__(self, name: str):
        # Only consulted for attributes not found normally: resolve the
        # stat fields from their backing counters (ints except seconds).
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            value = counters[name].value
            return value if name == "seconds" else int(value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def add(self, **deltas: float) -> None:
        """Atomically increment the named counters."""
        counters = self._counters
        for name, delta in deltas.items():
            counter = counters.get(name)
            if counter is None:
                raise AttributeError(f"unknown streaming stat {name!r}")
            counter.inc(delta)

    def record_batch(self, seconds: float) -> None:
        """Account the wall time of one applied micro-batch."""
        self._counters["seconds"].inc(max(0.0, seconds))
        self._batch_seconds.observe(max(0.0, seconds))

    @property
    def events_per_second(self) -> float:
        """Sustained ingestion rate over the updater's busy seconds."""
        seconds = self.seconds
        if seconds <= 0:
            return float("nan")
        return self.events / seconds

    def copy(self) -> "StreamingStats":
        """A frozen-in-time copy (private registry, counters cloned).

        Used where callers need a stable snapshot of a stats object the
        updater keeps mutating (e.g. per-epoch ``raw`` records).
        """
        clone = StreamingStats(labels=self.labels)
        clone.add(**{name: getattr(self, name) for name in _STREAM_FIELDS})
        return clone

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (for logs, the CLI, and benchmark payloads)."""
        summary: Dict[str, float] = {
            name: getattr(self, name) for name in _STREAM_FIELDS
        }
        summary["events_per_second"] = self.events_per_second
        return summary


class OnlineUpdater:
    """Apply micro-batched purchase events to user vectors online.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.tf_model.TaxonomyFactorModel` (or
        MFModel).  The updater works on a private copy of its factors;
        the argument itself is never mutated.
    steps:
        Vectorized SGD passes over each micro-batch's purchase pairs (the
        per-event update budget; each pass resamples negatives).
    learning_rate, reg:
        Step size and L2 strength; default to the model's training config.
    fold_in_steps:
        SGD budget for warm-starting a brand-new user from their streamed
        history (see :func:`~repro.core.folding.fold_in_user`).
    auto_place:
        How :class:`~repro.streaming.events.ItemArrival` events without a
        category are handled.  ``False`` (default) rejects them at ingest
        with a typed :class:`~repro.streaming.events.MissingCategoryError`
        — before any state is touched.  ``True`` chooses a category with
        :func:`repro.taxonomy.learn.place_item` (popularity evidence at
        arrival time; the periodic refinement re-seats the item once
        purchase data accrues).
    seed:
        Seed of the negative sampler and fold-in.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` the
        updater's :class:`StreamingStats` records into (private when
        omitted).

    Examples
    --------
    >>> from repro import (PurchaseEvent, SyntheticConfig,
    ...                    TaxonomyFactorModel, generate_dataset)
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> updater = OnlineUpdater(model, steps=1, seed=0)
    >>> stats = updater.apply_events([PurchaseEvent(user=0, items=(1,))])
    >>> (stats.events, stats.purchases)
    (1, 1)
    >>> updater.snapshot() is not model   # an independent published model
    True
    """

    def __init__(
        self,
        model: TaxonomyFactorModel,
        steps: int = 4,
        learning_rate: Optional[float] = None,
        reg: Optional[float] = None,
        fold_in_steps: int = 100,
        auto_place: bool = False,
        seed: RngLike = 0,
        registry=None,
    ):
        check_positive("steps", steps)
        check_positive("fold_in_steps", fold_in_steps)
        base = model.factor_set  # fail fast when unfitted
        self.model = copy.copy(model)
        self.model._factors = base.copy()
        config = model.config
        self.steps = int(steps)
        self.learning_rate = (
            config.learning_rate if learning_rate is None else float(learning_rate)
        )
        self.reg = config.reg if reg is None else float(reg)
        self.fold_in_steps = int(fold_in_steps)
        self.auto_place = bool(auto_place)
        self.rng = ensure_rng(seed)
        self.stats = StreamingStats(registry=registry)
        #: Cumulative BPR negative log-likelihood over every pair step —
        #: lets :class:`repro.train.OnlineTrainer` report a per-epoch loss
        #: comparable to the offline trainers' (divide deltas by the
        #: ``pair_steps`` delta).
        self.pair_loss = 0.0

        # Accumulated per-user histories: the training log's baskets plus
        # every streamed basket, in order.  This is what snapshots attach
        # for Markov context and purchased-item exclusion, and what new
        # users are folded in from.
        self._history: List[List[np.ndarray]] = []
        source = model._train_log
        if source is not None:
            self._history = [
                list(source.user_transactions(u)) for u in range(source.n_users)
            ]
        # Rows that carry learned state (trained offline or folded in
        # here).  ensure_users() can create gap rows for user ids never
        # seen; those must still be folded in on first appearance.
        self._trained = np.zeros(self.model.factor_set.n_users, dtype=bool)
        self._trained[: model.n_users] = True
        # Per-item purchase counts, maintained incrementally so hot-swaps
        # can publish a fresh popularity fallback without re-scanning the
        # whole accumulated log.
        self._item_counts = (
            source.item_counts()
            if source is not None
            else np.zeros(self.model.taxonomy.n_items, dtype=np.int64)
        )
        self._refresh_item_snapshot()

    def _refresh_item_snapshot(self) -> None:
        """Re-cache the frozen effective item factors (after onboarding)."""
        fs = self.model.factor_set
        self._effective = fs.effective_items()
        self._bias = fs.bias_of_items()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Users the working copy currently has factors for."""
        return self.model.factor_set.n_users

    @property
    def n_items(self) -> int:
        """Items the working copy currently scores (grows on onboarding)."""
        return self.model.n_items

    def history_of(self, user: int) -> List[np.ndarray]:
        """The accumulated baskets of *user* (training + streamed)."""
        if user >= len(self._history):
            return []
        return list(self._history[user])

    # ------------------------------------------------------------------
    # Applying events
    # ------------------------------------------------------------------
    def apply_events(self, events: Sequence[PurchaseEvent]) -> StreamingStats:
        """Convenience: wrap loose purchase events into one micro-batch."""
        batch = MicroBatch()
        for event in events:
            batch.purchases.append(event)
        return self.apply(batch)

    def apply(self, batch: MicroBatch) -> StreamingStats:
        """Fold one :class:`~repro.streaming.events.MicroBatch` into the
        working factors; returns the cumulative :class:`StreamingStats`.
        """
        started = time.perf_counter()
        if batch.arrivals:
            # Resolve every arrival's category *before* mutating anything:
            # a category-free arrival either fails here with the typed
            # MissingCategoryError or is placed by similarity/popularity
            # evidence — never a KeyError halfway through a batch.
            parents = self._resolve_arrival_parents(batch.arrivals)
            self.onboard_items(
                parents,
                names=(
                    None
                    if all(a.name is None for a in batch.arrivals)
                    else [a.name or "" for a in batch.arrivals]
                ),
            )
        deltas = batch.user_deltas()
        if deltas:
            pairs = batch.purchase_pairs()
            self._validate_items(pairs)
            np.add.at(self._item_counts, pairs[:, 1], 1)
            self._grow_users(max(deltas) + 1)
            fresh = [u for u in deltas if not self._trained[u]]
            known = [u for u in deltas if self._trained[u]]
            # Markov context is frozen at the pre-batch history (the
            # context a transaction was made *after*), mirroring training.
            contexts = self._contexts_for(known)
            for user in deltas:
                self._history[user].extend(deltas[user])
            for user in fresh:
                self._fold_in_new_user(user)
            if known:
                slot_pairs, banned = self._pairs_for(known, deltas)
                self._sgd_on_pairs(
                    slot_pairs,
                    banned,
                    contexts,
                    np.asarray(known, dtype=np.int64),
                )
        self.stats.add(
            events=batch.n_events,
            purchases=batch.n_purchases,
            batches=1,
        )
        self.stats.record_batch(time.perf_counter() - started)
        return self.stats

    def _resolve_arrival_parents(self, arrivals: Sequence[ItemArrival]) -> List[int]:
        """Category node for every arrival, placing category-free ones.

        With ``auto_place`` off this is strict:
        :meth:`~repro.streaming.events.ItemArrival.require_parent` raises
        the typed error for the first category-free arrival.  With it on,
        :func:`repro.taxonomy.learn.place_item` picks the category from
        the only evidence a brand-new item has — per-category purchase
        mass — counted once per batch, before this batch's purchases.
        """
        if not self.auto_place:
            return [a.require_parent() for a in arrivals]
        resolved: List[int] = []
        placed = 0
        for arrival in arrivals:
            if arrival.has_category:
                resolved.append(arrival.parent)
            else:
                resolved.append(
                    place_item(
                        self.model.taxonomy,
                        self._effective,
                        item_counts=self._item_counts,
                    )
                )
                placed += 1
        if placed:
            self.stats.add(placed_items=placed)
        return resolved

    def _validate_items(self, pairs: np.ndarray) -> None:
        n_items = self.n_items
        if pairs.size and pairs[:, 1].max() >= n_items:
            bad = int(pairs[:, 1].max())
            raise ValueError(
                f"event references item {bad} but the taxonomy has "
                f"{n_items} items; onboard new items first (ItemArrival)"
            )

    def _grow_users(self, n_users: int) -> None:
        fs = self.model.factor_set
        if n_users > fs.n_users:
            old_n = fs.n_users
            fs.ensure_users(n_users, seed=self.model.config.seed)
            # Zero the grown rows: user ids below the batch maximum may
            # never appear ("gap" users), and a swapped-in snapshot serves
            # every row as a known user.  A zero vector scores items by
            # bias alone (a popularity-shaped prior) instead of the random
            # Gaussian init; fold-in overwrites the row when the user
            # actually shows up.
            fs.user[old_n:n_users] = 0.0
            grown = np.zeros(n_users, dtype=bool)
            grown[: self._trained.size] = self._trained
            self._trained = grown
        while len(self._history) < fs.n_users:
            self._history.append([])

    def _fold_in_new_user(self, user: int) -> None:
        """Warm-start a brand-new user's row from their streamed history."""
        vector = fold_in_user(
            self.model,
            self._history[user],
            steps=self.fold_in_steps,
            learning_rate=self.learning_rate,
            reg=self.reg,
            seed=self.rng,
        )
        self.model.factor_set.user[user] = vector
        self._trained[user] = True
        self.stats.add(new_users=1)

    def _contexts_for(self, users: Sequence[int]) -> Optional[np.ndarray]:
        """Eq. 3 context vectors (one row per user), or ``None`` when the
        model has no Markov term."""
        config = self.model.config
        if config.markov_order == 0 or not users:
            return None
        from repro.core.affinity import context_items_weights
        from repro.core.factors import KIND_NEXT

        fs = self.model.factor_set
        out = np.zeros((len(users), fs.factors))
        for row, user in enumerate(users):
            history = self._history[user] if user < len(self._history) else []
            items, weights = context_items_weights(
                history, config.markov_order, config.alpha
            )
            if items.size:
                out[row] = weights @ fs.effective_items(items, kind=KIND_NEXT)
        return out

    def _pairs_for(
        self,
        users: Sequence[int],
        deltas: "Dict[int, List[np.ndarray]]",
    ) -> Tuple[np.ndarray, List[frozenset]]:
        """Flatten the chosen users' deltas to ``(user_slot, item)`` pairs.

        The first column indexes into *users* (so context rows line up),
        not the global user space.  Also returns one banned set per pair —
        the originating basket — so negative sampling can keep the offline
        trainer's ``j ∉ B_t`` semantics (a same-basket "negative" would
        push an item up as a positive and down as a negative in the same
        step).
        """
        rows: List[np.ndarray] = []
        banned: List[frozenset] = []
        for slot, user in enumerate(users):
            for basket in deltas[user]:
                block = np.empty((basket.size, 2), dtype=np.int64)
                block[:, 0] = slot
                block[:, 1] = basket
                rows.append(block)
                basket_set = frozenset(int(i) for i in basket)
                banned.extend(basket_set for _ in range(basket.size))
        return np.concatenate(rows, axis=0), banned

    def _sgd_on_pairs(
        self,
        slot_pairs: np.ndarray,
        banned: List[frozenset],
        contexts: Optional[np.ndarray],
        users: np.ndarray,
    ) -> None:
        """Vectorized BPR user-steps over ``(slot, positive item)`` pairs.

        Every pass resamples one negative per pair (rejecting the pair's
        whole basket, the offline sampler's ``j ∉ B_t``) and applies
        :func:`~repro.core.sgd.bpr_user_step` — the same Eq. 6 increment
        the offline trainer scatter-adds — to the user rows only.
        """
        slots = slot_pairs[:, 0]
        positives = slot_pairs[:, 1]
        rows = users[slots]
        fs = self.model.factor_set
        lr, reg = self.learning_rate, self.reg
        n_items = self.n_items
        for _ in range(self.steps):
            negatives = self.rng.integers(0, n_items, size=positives.size)
            for _attempt in range(3):  # resample j ∈ B_t collisions
                collide = np.fromiter(
                    (int(j) in banned[m] for m, j in enumerate(negatives)),
                    dtype=bool,
                    count=negatives.size,
                )
                if not collide.any():
                    break
                negatives[collide] = self.rng.integers(
                    0, n_items, size=int(collide.sum())
                )
            vu = fs.user[rows]
            query = vu if contexts is None else vu + contexts[slots]
            delta = self._effective[positives] - self._effective[negatives]
            diff = np.einsum("mk,mk->m", query, delta)
            diff += self._bias[positives] - self._bias[negatives]
            c = 1.0 - sigmoid(diff)
            np.add.at(fs.user, rows, bpr_user_step(vu, delta, c, lr, reg))
            self.pair_loss += float(-log_sigmoid(diff).sum())
            self.stats.add(pair_steps=int(positives.size))

    # ------------------------------------------------------------------
    # Catalog growth
    # ------------------------------------------------------------------
    def onboard_items(
        self,
        parents: Sequence[int],
        names: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Attach brand-new items under existing taxonomy nodes.

        Delegates to :func:`repro.taxonomy.extend.add_items` through the
        model, so the new items' offsets start at zero and their effective
        factors equal the parent's ancestor-chain sum (warm start).
        Returns the new dense item indices.
        """
        new_items = self.model.onboard_items(parents, names)
        self._item_counts = np.concatenate(
            [self._item_counts, np.zeros(new_items.size, dtype=np.int64)]
        )
        self._refresh_item_snapshot()
        self.stats.add(new_items=int(new_items.size))
        return new_items

    # ------------------------------------------------------------------
    # Taxonomy refinement
    # ------------------------------------------------------------------
    def replant(self, moves: Dict[int, int]) -> None:
        """Re-seat items under new categories in the working model.

        Effective factors are preserved exactly
        (:meth:`~repro.core.tf_model.TaxonomyFactorModel.replant_items`),
        so snapshots published before and after rank identically; the
        taxonomy advances one revision and future updates train against
        the corrected chains.
        """
        self.model.replant_items(moves)
        self._refresh_item_snapshot()
        self.stats.add(replants=len(moves))

    def refine(
        self,
        *,
        min_gain: float = 0.05,
        max_moves: Optional[int] = None,
    ) -> Dict[int, int]:
        """One refinement pass: find drifted items and replant them.

        Items whose streamed purchase history pulled their effective
        factor closer to another category's centroid than their own
        (by more than *min_gain* cosine similarity) are re-seated, at
        most *max_moves* per pass.  Returns the applied moves (empty when
        nothing drifted — the taxonomy is left untouched, same revision).
        """
        moves = refine_placements(
            self.model.taxonomy,
            self._effective,
            min_gain=min_gain,
            max_moves=max_moves,
        )
        if moves:
            self.replant(moves)
        return moves

    # ------------------------------------------------------------------
    # Snapshots for hot-swapping
    # ------------------------------------------------------------------
    def history_log(self) -> TransactionLog:
        """The accumulated history as a log (training + streamed baskets).

        Uses the trusted :meth:`~repro.data.transactions.TransactionLog.
        from_baskets` path: every stored basket came from a validated log
        or from ``PurchaseEvent.basket()``, so the snapshot publish does
        not re-validate the whole history on every hot-swap.
        """
        return TransactionLog.from_baskets(
            self._history, n_items=self.model.taxonomy.n_items
        )

    def popularity(self):
        """A popularity fallback fitted on the incremental item counts."""
        from repro.core.popularity import PopularityModel

        return PopularityModel.from_counts(self._item_counts)

    def snapshot(self) -> TaxonomyFactorModel:
        """An independent fitted model frozen at the current update state.

        Factors are deep-copied and the accumulated history is attached,
        so the snapshot keeps serving consistently while this updater
        continues to apply events — the artifact
        :class:`~repro.streaming.swap.HotSwapper` checkpoints and installs.
        """
        model = copy.copy(self.model)
        model._factors = self.model.factor_set.copy()
        model.history_ = list(self.model.history_)
        model.attach_log(self.history_log())
        return model
