"""Versioned checkpoints and zero-downtime model publication.

The last leg of the streaming pipeline: the
:class:`~repro.streaming.updater.OnlineUpdater` produces snapshots, and
this module makes them durable and live.

* :class:`CheckpointStore` — a directory of versioned
  :class:`~repro.serving.bundle.ModelBundle` artifacts (``v0001``,
  ``v0002``, ...) plus an atomically-updated ``LATEST`` pointer.  Saves
  inherit the bundle layer's crash-safety (staged writes, manifest last),
  so a crash mid-checkpoint can never leave an unloadable latest version.
* :class:`HotSwapper` — checkpoints a snapshot (optionally) and installs
  it into a live :class:`~repro.serving.service.RecommenderService` via
  :meth:`~repro.serving.service.RecommenderService.swap_model`, which
  flushes the query-vector cache and retires its generation.  Requests in
  flight finish against the old model; the next request sees the new one —
  serving never pauses.

The swap target is duck-typed on ``swap_model(model, popularity=...)``:
a :class:`~repro.serving.sharding.ShardRouter` satisfies the same
contract, so one :meth:`HotSwapper.publish` call republishes the factor
matrices into shared memory and remaps **every shard process** of a
sharded fleet — the checkpoint/swap pipeline is identical whether one
process or N serve the traffic.
"""

from __future__ import annotations

import os
import re
import shutil
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.serving.bundle import ModelBundle
from repro.serving.service import RecommenderService
from repro.serving.sharding import ShardRouter

PathLike = Union[str, Path]

#: Anything a :class:`HotSwapper` can publish into: a single-process
#: service or a multi-process shard fleet (same ``swap_model`` contract).
SwapTarget = Union[RecommenderService, ShardRouter]

_VERSION_RE = re.compile(r"^v(\d{4,})$")
LATEST_NAME = "LATEST"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, corrupt, or empty."""


class CheckpointStore:
    """Versioned model bundles under one directory.

    Parameters
    ----------
    directory:
        Root of the store (created on first save).
    keep:
        Retain only the newest *keep* versions, pruning older ones after
        each save (``None`` keeps everything).

    Examples
    --------
    >>> import tempfile
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> tmp = tempfile.TemporaryDirectory()
    >>> store = CheckpointStore(tmp.name, keep=2)
    >>> [store.save(model) for _ in range(3)]
    [1, 2, 3]
    >>> store.versions()   # keep=2 pruned v0001
    [2, 3]
    >>> tmp.cleanup()
    """

    def __init__(self, directory: PathLike, keep: Optional[int] = None):
        self.directory = Path(directory)
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def versions(self) -> List[int]:
        """All checkpoint versions present, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            match = _VERSION_RE.match(path.name)
            if match and path.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self) -> Optional[int]:
        """The newest version present on disk.

        The directory scan is the source of truth — the ``LATEST`` pointer
        file is written for humans and external tooling but deliberately
        not trusted here, so a crash between the bundle write and the
        pointer update can never hide a complete checkpoint.
        """
        versions = self.versions()
        return versions[-1] if versions else None

    def path_of(self, version: int) -> Path:
        """The bundle directory of checkpoint *version*."""
        return self.directory / f"v{version:04d}"

    # ------------------------------------------------------------------
    # Saving / loading
    # ------------------------------------------------------------------
    def save(self, model: Any, extra: Optional[Dict[str, Any]] = None) -> int:
        """Checkpoint *model* as the next version; returns its number."""
        self.directory.mkdir(parents=True, exist_ok=True)
        version = (self.latest_version() or 0) + 1
        payload = dict(extra or {})
        payload.setdefault("checkpoint_version", version)
        ModelBundle(model, extra=payload).save(self.path_of(version))
        self._write_latest(version)
        if self.keep is not None:
            for old in self.versions()[: -self.keep]:
                shutil.rmtree(self.path_of(old), ignore_errors=True)
        return version

    def _write_latest(self, version: int) -> None:
        pointer = self.directory / LATEST_NAME
        tmp = self.directory / f".{LATEST_NAME}.tmp-{os.getpid()}"
        tmp.write_text(f"{version}\n", encoding="utf-8")
        os.replace(tmp, pointer)

    def load(self, version: Optional[int] = None) -> ModelBundle:
        """Load one checkpoint (the latest when *version* is omitted)."""
        if version is None:
            version = self.latest_version()
            if version is None:
                raise CheckpointError(f"no checkpoints in {self.directory}")
        path = self.path_of(version)
        if not path.exists():
            raise CheckpointError(f"no checkpoint v{version:04d} in {self.directory}")
        return ModelBundle.load(path)


class HotSwapper:
    """Publish model snapshots into a live service with zero downtime.

    Parameters
    ----------
    service:
        The swap target: a
        :class:`~repro.serving.service.RecommenderService` or a
        :class:`~repro.serving.sharding.ShardRouter` (publishing to a
        router atomically remaps the shared factor matrices across every
        shard process).
    store:
        Optional :class:`CheckpointStore`; when given, every published
        snapshot is checkpointed *before* it goes live, so the served
        model is always recoverable from disk.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; each
        publication records ``repro_swap_publications_total`` and its
        checkpoint+swap wall time in ``repro_swap_publish_seconds``.
        Defaults to the target's own registry when it has one, so swap
        telemetry lands in the same snapshot as serving metrics.

    Examples
    --------
    >>> from repro import (RecommenderService, SyntheticConfig,
    ...                    TaxonomyFactorModel, generate_dataset)
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> service = RecommenderService(model, history_log=data.log)
    >>> swapper = HotSwapper(service)          # no store: swap only
    >>> print(swapper.publish(model))
    None
    >>> (swapper.swaps, service.generation)
    (1, 1)
    """

    def __init__(
        self,
        service: SwapTarget,
        store: Optional[CheckpointStore] = None,
        registry=None,
    ):
        self.service = service
        self.store = store
        self.swaps = 0
        self.versions: List[int] = []
        if registry is None:
            registry = getattr(service, "registry", None)
        self.registry = registry
        self._publications = None
        self._publish_seconds = None
        if registry is not None:
            self._publications = registry.counter(
                "repro_swap_publications_total",
                help="Model snapshots published into the live service.",
            )
            self._publish_seconds = registry.histogram(
                "repro_swap_publish_seconds",
                help="Wall time of one checkpoint+swap publication.",
            )

    def publish(
        self,
        model: Any,
        extra: Optional[Dict[str, Any]] = None,
        popularity: Optional[Any] = None,
    ) -> Optional[int]:
        """Checkpoint (if configured) then atomically swap *model* live.

        Returns the checkpoint version, or ``None`` when no store is
        configured.  The swap flushes the service's query-vector cache and
        bumps its generation (see
        :meth:`~repro.serving.service.RecommenderService.swap_model`).
        *popularity* replaces the cold-user fallback (the updater
        maintains one incrementally); omitted, it is refit from the
        model's attached log.
        """
        started = time.perf_counter()
        version: Optional[int] = None
        if self.store is not None:
            version = self.store.save(model, extra=extra)
            self.versions.append(version)
        self.service.swap_model(model, popularity=popularity)
        self.swaps += 1
        if self._publications is not None:
            self._publications.inc()
            self._publish_seconds.observe(
                max(0.0, time.perf_counter() - started)
            )
        return version
