"""Online event ingestion: append-only logs and micro-batched user deltas.

The offline pipeline consumes a frozen :class:`~repro.data.transactions.
TransactionLog`; a production system sees an unbounded *stream* of events
arriving between retrains.  This module is the ingestion edge of
``repro.streaming``:

* :class:`PurchaseEvent` — one basket bought by one user (the streaming
  analogue of the log's ``B_t``); the user index may exceed the trained
  model's user space (a brand-new user), and items may be ones onboarded
  mid-stream;
* :class:`ItemArrival` — a brand-new catalog item attached under an
  existing taxonomy node (the paper's Sec. 1 cold-start event);
* :class:`EventLog` — an append-only JSONL file that persists the stream
  (one event per line, so concurrent appends never tear a record and a
  replay sees exactly the ingestion order);
* :func:`iter_microbatches` — groups a stream into :class:`MicroBatch`
  objects exposing **per-user deltas** (each user's new baskets, in
  order), the unit the :class:`~repro.streaming.updater.OnlineUpdater`
  applies in one vectorized step;
* :func:`events_from_transactions` / :func:`replay` — turn an offline log
  back into a stream and pace it at a target event rate, for replay
  testing and the ``python -m repro stream`` command.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.data.transactions import TransactionLog

PathLike = Union[str, Path]


class EventError(ValueError):
    """An event record is malformed (empty basket, bad payload, ...)."""


class MissingCategoryError(EventError):
    """An :class:`ItemArrival` names no category where one is required.

    Raised at ingest — before any model state is touched — when a
    category-free arrival reaches a consumer that has no automatic
    placement enabled.  The remedy is either to attach the item under a
    taxonomy node at the source, or to let
    :func:`repro.taxonomy.learn.place_item` choose a category
    (``OnlineUpdater(auto_place=True)``).
    """


@dataclass(frozen=True)
class PurchaseEvent:
    """One transaction: *user* bought *items* (a non-empty basket).

    Examples
    --------
    >>> PurchaseEvent(user=3, items=(5, 2, 5)).basket()
    array([2, 5])
    """

    user: int
    items: Tuple[int, ...]

    def __post_init__(self) -> None:
        try:
            user = int(self.user)
            items = tuple(int(i) for i in self.items)
        except (TypeError, ValueError) as exc:
            raise EventError(f"malformed purchase event: {exc}") from exc
        if user < 0:
            raise EventError(f"user must be >= 0, got {user}")
        if not items:
            raise EventError(f"user {user} event has an empty basket")
        if any(i != orig for i, orig in zip(items, self.items)):
            raise EventError(f"user {user} event has non-integer items")
        if any(i < 0 for i in items):
            raise EventError(f"user {user} event has a negative item")
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "items", items)

    def basket(self) -> np.ndarray:
        """The basket as a deduplicated int64 array (the log's format)."""
        return np.unique(np.asarray(self.items, dtype=np.int64))


@dataclass(frozen=True)
class ItemArrival:
    """A new catalog item released under taxonomy node *parent*.

    *parent* may be ``None`` — a catalog with no curated taxonomy does
    not know the category at release time.  Such arrivals are only
    ingestible by consumers that place items themselves (see
    :func:`repro.taxonomy.learn.place_item`); anything that needs the
    node id calls :meth:`require_parent` and gets the typed
    :class:`MissingCategoryError` instead of a ``KeyError`` deep inside
    the taxonomy-growing machinery.

    Examples
    --------
    >>> ItemArrival(parent=7, name="gadget").name
    'gadget'
    >>> ItemArrival().has_category
    False
    >>> try:
    ...     ItemArrival().require_parent()
    ... except MissingCategoryError as exc:
    ...     "place_item" in str(exc)
    True
    """

    parent: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.parent is None:
            return
        try:
            parent = int(self.parent)
        except (TypeError, ValueError) as exc:
            raise EventError(f"malformed item arrival: {exc}") from exc
        if parent != self.parent:
            raise EventError(
                f"item arrival parent must be an integer node id, "
                f"got {self.parent!r}"
            )
        if parent < 0:
            raise EventError(f"parent node must be >= 0, got {parent}")
        object.__setattr__(self, "parent", parent)

    @property
    def has_category(self) -> bool:
        """Whether the arrival names a taxonomy node to attach under."""
        return self.parent is not None

    def require_parent(self) -> int:
        """The parent node id, or :class:`MissingCategoryError` if absent."""
        if self.parent is None:
            raise MissingCategoryError(
                f"item arrival {self.name or '<unnamed>'!r} has no "
                f"category: attach the item under a taxonomy node at the "
                f"source, or enable automatic placement "
                f"(repro.taxonomy.learn.place_item) on the consumer"
            )
        return self.parent


Event = Union[PurchaseEvent, ItemArrival]


def encode_event(event: Event) -> str:
    """One-line JSON encoding (the :class:`EventLog` wire format)."""
    if isinstance(event, PurchaseEvent):
        return json.dumps({"u": event.user, "i": list(event.items)})
    if isinstance(event, ItemArrival):
        # "parent" is always present (null for category-free arrivals):
        # its presence is what decode_event dispatches on.
        payload: Dict[str, object] = {"parent": event.parent}
        if event.name is not None:
            payload["name"] = event.name
        return json.dumps(payload)
    raise EventError(f"cannot encode {type(event).__name__} as an event")


def decode_event(line: str) -> Event:
    """Inverse of :func:`encode_event`.

    Every malformed record — invalid JSON, wrong shape, or bad field
    types — raises :class:`EventError`, so callers handling journal
    corruption only have one exception to catch.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise EventError(f"corrupt event record: {line!r}") from exc
    if not isinstance(payload, dict):
        raise EventError(f"corrupt event record: {line!r}")
    try:
        if "parent" in payload:
            raw = payload["parent"]
            return ItemArrival(
                None if raw is None else int(raw), payload.get("name")
            )
        if "u" in payload and "i" in payload:
            return PurchaseEvent(int(payload["u"]), tuple(payload["i"]))
    except EventError:
        raise
    except (TypeError, ValueError) as exc:
        raise EventError(f"corrupt event record: {line!r}") from exc
    raise EventError(f"corrupt event record: {line!r}")


class EventLog:
    """An append-only JSONL event journal.

    Events are written one per line with :func:`encode_event`; each append
    issues a single flushed ``write``.  The journal expects **one writer
    at a time** (the ingestion edge); concurrent readers are always safe,
    and a truncated trailing line (crash mid-append) is skipped on read
    rather than poisoning the replay — corruption anywhere *else* in the
    file is surfaced as an :class:`EventError`.

    Examples
    --------
    >>> import tempfile
    >>> tmp = tempfile.TemporaryDirectory()
    >>> journal = EventLog(tmp.name + "/events.jsonl")
    >>> journal.append(PurchaseEvent(user=0, items=(1, 2)))
    >>> journal.append_many([ItemArrival(parent=3)])
    1
    >>> [type(event).__name__ for event in journal]
    ['PurchaseEvent', 'ItemArrival']
    >>> tmp.cleanup()
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)

    def append(self, event: Event) -> None:
        """Append one event (one write, flushed)."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(encode_event(event) + "\n")
            handle.flush()

    def append_many(self, events: Iterable[Event]) -> int:
        """Append a batch of events as one flushed write; returns the count."""
        encoded = [encode_event(event) for event in events]
        if not encoded:
            return 0
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(encoded) + "\n")
            handle.flush()
        return len(encoded)

    def __iter__(self) -> Iterator[Event]:
        if not self.path.exists():
            return
        # One-record lookahead: a record is only decoded once a later
        # non-empty line proves it is not the trailing one, so the journal
        # streams in O(1) memory however large it grows.
        with open(self.path, "r", encoding="utf-8") as handle:
            pending: Optional[Tuple[int, str]] = None
            for number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                if pending is not None:
                    yield self._decode_interior(*pending)
                pending = (number, line)
            if pending is not None:
                try:
                    yield decode_event(pending[1])
                except EventError:
                    # A crash mid-append can leave one torn *trailing*
                    # line; everything before it is intact.
                    return

    def _decode_interior(self, number: int, line: str) -> Event:
        """Decode a record known not to be the trailing one: a failure
        here means the journal itself is corrupt — surface it rather than
        silently replaying a diverged stream."""
        try:
            return decode_event(line)
        except EventError as exc:
            raise EventError(
                f"corrupt event journal {self.path}: undecodable "
                f"record at line {number}: {line!r}"
            ) from exc

    def __len__(self) -> int:
        return sum(1 for _ in self)


@dataclass
class MicroBatch:
    """One ingestion window: purchases plus catalog arrivals.

    ``user_deltas`` is the view the updater consumes: for every user with
    activity in this window, their new baskets in arrival order — the
    incremental extension of the user's transaction history.
    """

    purchases: List[PurchaseEvent] = field(default_factory=list)
    arrivals: List[ItemArrival] = field(default_factory=list)

    @property
    def n_events(self) -> int:
        """Events in the window (purchases plus catalog arrivals)."""
        return len(self.purchases) + len(self.arrivals)

    @property
    def n_purchases(self) -> int:
        """Total (user, item) purchase pairs in the window."""
        return sum(len(e.items) for e in self.purchases)

    def user_deltas(self) -> "OrderedDict[int, List[np.ndarray]]":
        """Per-user deltas: new baskets per user, in arrival order."""
        deltas: "OrderedDict[int, List[np.ndarray]]" = OrderedDict()
        for event in self.purchases:
            deltas.setdefault(event.user, []).append(event.basket())
        return deltas

    def purchase_pairs(self) -> np.ndarray:
        """All purchase events flattened to ``(n, 2)`` rows of
        ``(user, item)`` — the sampling units of the incremental update."""
        rows: List[np.ndarray] = []
        for event in self.purchases:
            basket = event.basket()
            block = np.empty((basket.size, 2), dtype=np.int64)
            block[:, 0] = event.user
            block[:, 1] = basket
            rows.append(block)
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(rows, axis=0)


def iter_microbatches(
    events: Iterable[Event], batch_size: int = 256
) -> Iterator[MicroBatch]:
    """Group a stream into :class:`MicroBatch` windows of *batch_size* events.

    The final partial window is emitted too; an empty stream yields
    nothing.  Ordering within and across batches preserves the stream.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batch = MicroBatch()
    for event in events:
        if isinstance(event, ItemArrival):
            batch.arrivals.append(event)
        elif isinstance(event, PurchaseEvent):
            batch.purchases.append(event)
        else:
            raise EventError(f"not an event: {event!r}")
        if batch.n_events >= batch_size:
            yield batch
            batch = MicroBatch()
    if batch.n_events:
        yield batch


def events_from_transactions(
    log: TransactionLog,
    users: Optional[Sequence[int]] = None,
    start_t: Union[int, Sequence[int]] = 0,
) -> Iterator[PurchaseEvent]:
    """Replay a :class:`TransactionLog` as a purchase-event stream.

    Events are interleaved **round-robin by transaction index**: every
    user's ``t``-th unskipped basket is emitted before any user's
    ``(t+1)``-th — the global arrival order a timestamped log would give
    when per-user order is all we know (the paper's logs drop timestamps,
    Sec. 7.1).  ``start_t`` skips each user's first transactions (already
    trained on); pass a sequence for per-user offsets, e.g. the warm-start
    prefix lengths of a warm/stream split (indexed by user id, not by
    position in *users*).
    """
    if users is None:
        users = range(log.n_users)
    offsets = (
        {int(u): int(start_t) for u in users}
        if isinstance(start_t, int)
        else {int(u): int(start_t[int(u)]) for u in users}
    )
    t = 0
    while True:
        emitted = False
        for user in users:
            user = int(user)
            txns = log.user_transactions(user)
            idx = offsets[user] + t
            if idx < len(txns):
                yield PurchaseEvent(user, tuple(int(i) for i in txns[idx]))
                emitted = True
        if not emitted:
            return
        t += 1


def replay(
    events: Iterable[Event],
    rate: Optional[float] = None,
    clock: Optional[object] = None,
) -> Iterator[Event]:
    """Pace a stream at *rate* events/second (``None``/``0`` = unpaced).

    Each event is released against an absolute **monotonic deadline**
    (the *n*-th event no earlier than ``n / rate`` seconds after the
    first), never by accumulating relative sleeps: per-sleep error —
    timers waking late *or* early — cannot compound into drift, so a
    replay of ``N`` events takes ``(N - 1) / rate`` seconds to within a
    single tick however high the rate.  Slow consumers make the replay
    burst to catch up rather than fall ever further behind the target
    rate, and wall-clock adjustments (``time.time`` jumps) cannot stall
    or rush it.  *clock* injects ``(monotonic, sleep)`` for tests.
    """
    if not rate:
        yield from events
        return
    if rate < 0:
        raise ValueError(f"rate must be positive, got {rate}")
    monotonic = getattr(clock, "monotonic", time.monotonic)
    sleep = getattr(clock, "sleep", time.sleep)
    started = monotonic()
    for n, event in enumerate(events):
        due = started + n / rate
        while True:
            # Re-check after every sleep: a sleep that returns early
            # (signal delivery, coarse timers) must not release ahead of
            # the deadline or the tick error would accumulate.
            remaining = due - monotonic()
            if remaining <= 0:
                break
            sleep(remaining)
        yield event
