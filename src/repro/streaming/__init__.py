"""Online ingestion, incremental factor updates, and zero-downtime swaps.

The offline pipeline (train → bundle → serve) assumes a frozen log; this
package connects **live purchase events** to the factors being served,
the missing production loop between full retrains:

* :mod:`repro.streaming.events` — purchase/catalog events, the append-only
  :class:`EventLog`, and micro-batching into per-user deltas;
* :mod:`repro.streaming.updater` — :class:`OnlineUpdater`: incremental
  BPR steps on user vectors against frozen item/taxonomy factors, fold-in
  for brand-new users, taxonomy-attached onboarding for brand-new items;
* :mod:`repro.streaming.swap` — :class:`CheckpointStore` (versioned
  model bundles) and :class:`HotSwapper` (atomic, cache-coherent model
  replacement inside a live ``RecommenderService``);
* :mod:`repro.streaming.pipeline` — :class:`StreamingPipeline`, the
  ingest → update → publish loop.

Quickstart::

    from repro import OnlineUpdater, RecommenderService, StreamingPipeline
    from repro.streaming import events_from_transactions

    service = RecommenderService(model, history_log=split.train)
    pipeline = StreamingPipeline(service, batch_size=256, swap_every=4)
    pipeline.run(events_from_transactions(split.test), rate=10_000)
    service.recommend_batch(users, k=10)   # already on the updated model
"""

from repro.streaming.events import (
    Event,
    EventError,
    EventLog,
    ItemArrival,
    MicroBatch,
    MissingCategoryError,
    PurchaseEvent,
    decode_event,
    encode_event,
    events_from_transactions,
    iter_microbatches,
    replay,
)
from repro.streaming.pipeline import StreamingPipeline
from repro.streaming.swap import CheckpointError, CheckpointStore, HotSwapper
from repro.streaming.updater import OnlineUpdater, StreamingStats

__all__ = [
    # Events / ingestion
    "Event",
    "EventError",
    "EventLog",
    "MissingCategoryError",
    "PurchaseEvent",
    "ItemArrival",
    "MicroBatch",
    "iter_microbatches",
    "events_from_transactions",
    "replay",
    "encode_event",
    "decode_event",
    # Incremental updates
    "OnlineUpdater",
    "StreamingStats",
    # Checkpoint / hot swap
    "CheckpointStore",
    "CheckpointError",
    "HotSwapper",
    # Orchestration
    "StreamingPipeline",
]
